"""Shared-resource abstractions for the DES engine.

These mirror the classic SimPy resources:

:class:`Resource`
    A counted semaphore with FIFO queueing (e.g. a server, a channel).
:class:`PriorityResource`
    A resource whose waiting queue is ordered by a numeric priority.
:class:`Store`
    An unbounded (or bounded) FIFO buffer of Python objects with blocking
    ``get``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .engine import Simulator
from .events import Event

__all__ = ["Resource", "PriorityResource", "Store", "Request", "Release"]


class Request(Event):
    """Event that fires when a resource slot is granted.

    Use as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def cancel(self) -> None:
        """Withdraw the request (or release the slot if already granted)."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()


class Release(Event):
    """Immediate event confirming a resource release."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.sim)
        resource._release(request)
        self.succeed()


class Resource:
    """A counted, FIFO-queued resource.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of concurrent holders allowed (default 1).
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiting: deque[Request] = deque()

    # -- public API ----------------------------------------------------------

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back a previously granted slot."""
        return Release(self, request)

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    # -- internals -------------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)
        self._grant()

    def _grant(self) -> None:
        while self._has_waiting() and len(self.users) < self.capacity:
            request = self._pop_next()
            self.users.append(request)
            request.succeed(request)

    def _has_waiting(self) -> bool:
        return bool(self._waiting)

    def _pop_next(self) -> Request:
        return self._waiting.popleft()

    def _release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError("releasing a request that does not hold the resource")
        self._grant()

    def _cancel(self, request: Request) -> None:
        if request in self.users:
            self._release(request)
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass


class PriorityResource(Resource):
    """A resource whose queue is served in ascending ``priority`` order.

    Ties are broken FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        super().__init__(sim, capacity)
        self._heap: list[tuple[float, int, Request]] = []
        self._seq = 0

    def request(self, priority: float = 0.0) -> Request:  # type: ignore[override]
        return Request(self, priority=priority)

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (request.priority, self._seq, request))
        self._grant()

    def _has_waiting(self) -> bool:
        return bool(self._heap)

    def _pop_next(self) -> Request:
        _, _, request = heapq.heappop(self._heap)
        return request

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    def _cancel(self, request: Request) -> None:
        if request in self.users:
            self._release(request)
        else:
            self._heap = [entry for entry in self._heap if entry[2] is not request]
            heapq.heapify(self._heap)


class StoreGet(Event):
    """Event that fires with the next item from a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        store._getters.append(self)
        store._dispatch()


class Store:
    """A FIFO buffer of arbitrary items with blocking retrieval.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of buffered items; ``None`` means unbounded.
        ``put`` on a full store raises (the MAC simulator never needs
        blocking puts).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()

    def put(self, item: Any) -> None:
        """Add ``item``; wakes a blocked getter if one is waiting."""
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise OverflowError("store is full")
        self.items.append(item)
        self._dispatch()

    def get(self) -> StoreGet:
        """Return an event that fires with the next available item."""
        return StoreGet(self)

    def _dispatch(self) -> None:
        while self.items and self._getters:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())

    def __len__(self) -> int:
        return len(self.items)

"""Reproducible random-number streams.

Every stochastic component of a simulation draws from its *own* named
substream so that (a) runs are exactly reproducible from a single master
seed, and (b) changing one component's consumption pattern does not
perturb the draws seen by the others (common random numbers across
experiment arms).

Substreams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.

:class:`AntitheticGenerator` mirrors the *uniform* stream of a wrapped
generator (``u -> 1 - u``) while delegating every other method
unchanged.  Pairing a plain lane with its antithetic twin at the same
seed yields negatively correlated loss fractions, so the pair mean has
lower variance than two independent lanes — the classical antithetic
variates trick, scoped to uniforms because the simulators' decision
draws (splits, RANDOM scheduling, fault coin-flips) all flow through
``uniform``/``random``.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "AntitheticGenerator"]


def _stable_key(name: str) -> int:
    """A deterministic 32-bit key for a stream name (stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


class AntitheticGenerator:
    """A :class:`numpy.random.Generator` proxy with mirrored uniforms.

    ``random(...)`` returns ``1 - u`` and ``uniform(low, high, ...)``
    returns ``low + high - u`` for the wrapped generator's draw ``u`` —
    the same marginal distribution, perfectly negatively correlated with
    the plain lane at the same seed.  Every other method (``poisson``,
    ``integers``, ``shuffle``, ...) delegates verbatim, so arrival
    processes and population choices stay *common* between the pair and
    only the contention decisions mirror.

    The proxy consumes the underlying bit stream through the identical
    method calls as an unwrapped generator, which keeps the fast /
    batched / compiled kernels' draw-order parity contract intact.
    """

    __slots__ = ("_base",)

    def __init__(self, base: np.random.Generator):
        if isinstance(base, AntitheticGenerator):
            base = base._base  # mirroring twice is the identity; never stack
        self._base = base

    def random(self, *args, **kwargs):
        return 1.0 - self._base.random(*args, **kwargs)

    def uniform(self, low=0.0, high=1.0, size=None):
        return low + high - self._base.uniform(low, high, size)

    def __getattr__(self, name):
        return getattr(self._base, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AntitheticGenerator({self._base!r})"


class RandomStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    master_seed:
        Seed for the whole family.  Two :class:`RandomStreams` with the
        same master seed produce identical draws for identically named
        streams.
    antithetic:
        Wrap every stream in :class:`AntitheticGenerator`, mirroring the
        uniform draws against the plain family at the same master seed.

    Example
    -------
    >>> streams = RandomStreams(7)
    >>> arrivals = streams.get("arrivals")
    >>> noise = streams.get("noise")
    >>> arrivals is streams.get("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0, antithetic: bool = False):
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed}")
        self.master_seed = int(master_seed)
        self.antithetic = bool(antithetic)
        self._generators: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._generators.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence([self.master_seed, _stable_key(name)])
            generator = np.random.default_rng(seed_seq)
            if self.antithetic:
                generator = AntitheticGenerator(generator)
            self._generators[name] = generator
        return generator

    def spawn(self, index: int) -> "RandomStreams":
        """A derived family for replication ``index`` (independent seeds)."""
        if index < 0:
            raise ValueError(f"replication index must be non-negative, got {index}")
        child = RandomStreams.__new__(RandomStreams)
        child.master_seed = self.master_seed
        child.antithetic = self.antithetic
        child._generators = {}
        child._base = (self.master_seed, index)

        def _get(name: str, _child=child) -> np.random.Generator:
            generator = _child._generators.get(name)
            if generator is None:
                seed_seq = np.random.SeedSequence(
                    [_child._base[0], _child._base[1] + 1, _stable_key(name)]
                )
                generator = np.random.default_rng(seed_seq)
                if _child.antithetic:
                    generator = AntitheticGenerator(generator)
                _child._generators[name] = generator
            return generator

        child.get = _get  # type: ignore[method-assign]
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed})"

"""Reproducible random-number streams.

Every stochastic component of a simulation draws from its *own* named
substream so that (a) runs are exactly reproducible from a single master
seed, and (b) changing one component's consumption pattern does not
perturb the draws seen by the others (common random numbers across
experiment arms).

Substreams are derived with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


def _stable_key(name: str) -> int:
    """A deterministic 32-bit key for a stream name (stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    master_seed:
        Seed for the whole family.  Two :class:`RandomStreams` with the
        same master seed produce identical draws for identically named
        streams.

    Example
    -------
    >>> streams = RandomStreams(7)
    >>> arrivals = streams.get("arrivals")
    >>> noise = streams.get("noise")
    >>> arrivals is streams.get("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError(f"master seed must be non-negative, got {master_seed}")
        self.master_seed = int(master_seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._generators.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence([self.master_seed, _stable_key(name)])
            generator = np.random.default_rng(seed_seq)
            self._generators[name] = generator
        return generator

    def spawn(self, index: int) -> "RandomStreams":
        """A derived family for replication ``index`` (independent seeds)."""
        if index < 0:
            raise ValueError(f"replication index must be non-negative, got {index}")
        child = RandomStreams.__new__(RandomStreams)
        child.master_seed = self.master_seed
        child._generators = {}
        child._base = (self.master_seed, index)

        def _get(name: str, _child=child) -> np.random.Generator:
            generator = _child._generators.get(name)
            if generator is None:
                seed_seq = np.random.SeedSequence(
                    [_child._base[0], _child._base[1] + 1, _stable_key(name)]
                )
                generator = np.random.default_rng(seed_seq)
                _child._generators[name] = generator
            return generator

        child.get = _get  # type: ignore[method-assign]
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed})"

"""The discrete-event simulation kernel.

:class:`Simulator` maintains a priority queue of triggered events and a
simulation clock.  Processes (Python generators yielding events) are the
unit of concurrency.  The kernel is deliberately small, deterministic and
allocation-light: the MAC-layer simulations in :mod:`repro.mac` schedule
millions of events per run.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, log):
...     for _ in range(3):
...         yield sim.timeout(1.0)
...         log.append(sim.now)
>>> log = []
>>> _ = sim.process(pinger(sim, log))
>>> sim.run()
>>> log
[1.0, 2.0, 3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Optional

from .events import AllOf, AnyOf, Event, ProcessEvent, Timeout

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at an event."""


class Simulator:
    """Event queue, clock and process factory.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[ProcessEvent] = None

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[ProcessEvent]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: Optional[str] = None) -> ProcessEvent:
        """Register ``generator`` as a process; returns its completion event."""
        return ProcessEvent(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float, urgent: bool = False) -> None:
        """Insert a triggered event into the queue.

        ``urgent`` events sort before ordinary events scheduled at the same
        instant (used for interrupts, which must preempt the interrupted
        process's pending resumption).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule event in the past: delay={delay}")
        self._eid += 1
        priority = 0 if urgent else 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        IndexError
            If the event queue is empty.
        """
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()

    # -- run loop -----------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Advance the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event fires; its value is
              returned (its failure is raised).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until

            def _halt(event: Event) -> None:
                raise StopSimulation(event)

            if sentinel.processed:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            sentinel.callbacks.append(_halt)
            try:
                while self._queue:
                    self.step()
            except StopSimulation:
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            raise RuntimeError(
                "simulation ran out of events before the target event fired"
            )

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, until={horizon}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

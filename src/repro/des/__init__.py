"""Discrete-event simulation substrate.

A small, deterministic, coroutine-based event engine in the style of
SimPy (which is not available offline), plus reproducible random streams
and measurement probes.  Used by :mod:`repro.mac` for channel-level
simulation and by :mod:`repro.queueing.simulation` for queue-level
validation.
"""

from .engine import Simulator, StopSimulation
from .events import AllOf, AnyOf, Event, Interrupt, ProcessEvent, Timeout
from .monitor import Counter, Tally, TimeSeries
from .resources import PriorityResource, Resource, Store
from .rng import AntitheticGenerator, RandomStreams

__all__ = [
    "Simulator",
    "StopSimulation",
    "Event",
    "Timeout",
    "ProcessEvent",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Store",
    "RandomStreams",
    "AntitheticGenerator",
    "Counter",
    "TimeSeries",
    "Tally",
]

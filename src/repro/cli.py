"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure7``      regenerate one Figure-7 panel (table/CSV to stdout)
``theorem1``     run the Theorem-1 verification sweep
``simulate``     one slot-level protocol run with chosen parameters
``capacity``     print the protocol's capacity figures for a range of M
``ablations``    run the ablations (analytic by default, ``--simulate``
                 for the simulation arms)
``sensitivity``  assumption-sensitivity sweeps (stations/burstiness/
                 scheduling law)
``robustness``   fault-injection degradation experiments
``validity``     map where the eq. 4.7 analysis breaks under
                 nonstationary workloads (per-scenario-family drift)
``cache``        inspect or purge the on-disk memo cache
``report``       render or diff run reports written by ``--metrics``
``serve``        run the fault-tolerant sweep job daemon
``submit``       submit a sweep grid to a running daemon
``status``       show daemon jobs (or one job's progress/results)
``cancel``       cancel a submitted job
``drain``        gracefully drain the daemon (see ``docs/service.md``)

Every command accepts ``--seed`` (default 1); stochastic commands feed
it into a :class:`~repro.des.rng.RandomStreams` family so a run is
exactly reproducible from that single number, and the deterministic
analytic commands accept it as a no-op for interface uniformity.

Sweep-backed commands (``figure7``, ``ablations``, ``sensitivity``,
``robustness``, ``validity``) additionally accept the resilience flags
``--checkpoint DIR`` / ``--resume`` / ``--task-timeout`` /
``--max-retries`` / ``--verify-replay`` (see ``docs/resilience.md``).
Passing any of them turns on supervised execution: per-cell retry with
quarantine instead of fail-fast, and — with a checkpoint — a journal
that a re-invocation resumes from.

Every experiment command also accepts the observability flags
``--metrics [FILE]`` (collect metrics and write a ``report.json``;
FILE defaults to ``report.json``) and ``--trace FILE`` (write a
chrome-trace JSON-lines span file) — see ``docs/observability.md``.

Examples
--------
::

    python -m repro figure7 --rho 0.75 --m 25
    python -m repro figure7 --rho 0.5 --m 25 --simulate --csv
    python -m repro figure7 --simulate --workers 4 --checkpoint /tmp/f7 --resume
    python -m repro simulate --rho 0.75 --m 25 --deadline 75 --protocol lcfs
    python -m repro simulate --rho 0.5 --m 25 --feedback-error 0.02
    python -m repro theorem1 --deadline 10
    python -m repro capacity
    python -m repro ablations --simulate --workers 4 --horizon 40000
    python -m repro sensitivity --scenario burstiness
    python -m repro validity --families stationary adversarial --rho 0.5 --m 25
    python -m repro robustness --seeds 3
    python -m repro robustness --scenario failures
    python -m repro robustness --feedback-errors --recovery gated-rejoin
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from . import cache
from .core import ControlPolicy
from .crp.capacity import max_stable_throughput
from .des.rng import RandomStreams
from .experiments import (
    DEFAULT_AGREEMENT_TOL,
    DEFAULT_ERROR_RATES,
    SCENARIO_FAMILIES,
    PanelConfig,
    ValidityConfig,
    ResilienceOptions,
    RobustnessConfig,
    Theorem1Config,
    ablation_table,
    arity_ablation,
    ascii_table,
    burstiness_sensitivity,
    element4_ablation,
    feedback_error_sweep,
    generate_panel,
    protocol_degradation_sweep,
    run_theorem1_experiment,
    run_validity,
    scheduling_model_sensitivity,
    split_rule_ablation,
    station_count_sensitivity,
    station_failure_scenario,
    twopoint_fit_errors,
    window_length_ablation,
)
from .experiments.sweep import (
    MACRunSpec,
    SequentialOptions,
    derive_seeds,
    run_spec,
    run_spec_with_metrics,
)
from .faults import RECOVERY_POLICIES, FaultModel
from .mac import WindowMACSimulator
from .mac.batch import run_batch, run_batch_with_metrics
from .obs import (
    JsonlTracer,
    MetricsRegistry,
    build_report,
    diff_reports,
    install,
    install_tracer,
    load_report,
    render_report,
    write_report,
)
from .obs.tracing import current_tracer
from .resilience import JournalMismatchError, JournalSchemaError
from .service import ServiceClient, ServiceConfig, ServiceError
from .service.server import serve as _serve_daemon

__all__ = ["main"]


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """Attach the observability flags shared by experiment commands."""
    g = p.add_argument_group(
        "observability",
        "metrics collection and span tracing (see docs/observability.md)",
    )
    g.add_argument("--metrics", nargs="?", const="report.json", default=None,
                   metavar="FILE",
                   help="collect metrics and write a run report "
                        "(default FILE: report.json)")
    g.add_argument("--trace", default=None, metavar="FILE",
                   help="write phase spans as chrome-trace JSON lines")


def _obs_setup(args: argparse.Namespace):
    """Build and install the registry/tracer the flags ask for.

    The registry also becomes the process-global one for the duration of
    the command, so deep call sites (the memo cache) report into the
    same ``report.json``.
    """
    registry = tracer = None
    if getattr(args, "metrics", None) is not None:
        registry = MetricsRegistry()
        install(registry)
    if getattr(args, "trace", None) is not None:
        tracer = JsonlTracer(args.trace)
        install_tracer(tracer)
    args.obs_registry = registry
    return registry, tracer


def _obs_teardown(registry, tracer) -> None:
    if tracer is not None:
        install_tracer(None)
        tracer.close()
    if registry is not None:
        install(None)


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    """Attach the supervised-execution flags shared by sweep commands."""
    g = p.add_argument_group(
        "resilience",
        "supervised sweep execution (any of these flags enables it; "
        "none keeps the historical fail-fast behaviour)",
    )
    g.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="journal completed cells into DIR so an "
                        "interrupted run can be resumed")
    g.add_argument("--resume", action="store_true",
                   help="replay completed cells from --checkpoint "
                        "instead of recomputing them")
    g.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock budget per cell; an overdue cell is "
                        "killed and retried on a fresh worker")
    g.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="attempts per cell beyond the first before it is "
                        "quarantined (default 2 when supervision is on)")
    g.add_argument("--verify-replay", action="store_true",
                   help="with --resume: recompute journaled cells and "
                        "fail loudly if any diverge (determinism audit)")


def _add_batch_flag(p: argparse.ArgumentParser) -> None:
    """Attach ``--batch/--no-batch`` (same escape-hatch shape as
    ``--no-fast-path``: results are bit-identical either way)."""
    p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="group eligible runs into lane-parallel batched "
                        "tasks (default on; bit-identical output — "
                        "--no-batch restores one-task-per-run dispatch)")


def _add_sequential_flags(p: argparse.ArgumentParser) -> None:
    """Attach the adaptive-replication flags shared by sweep commands."""
    g = p.add_argument_group(
        "sequential replication",
        "adaptive per-arm replication: lane waves until the loss CI "
        "half-width meets --ci-target, with group-sequential alpha "
        "spending so repeated looks stay honest (docs/statistics.md)",
    )
    g.add_argument("--sequential", action="store_true",
                   help="replace fixed replication with CI-targeted "
                        "lane waves per arm")
    g.add_argument("--ci-target", type=float, default=0.01,
                   metavar="HALF_WIDTH",
                   help="stop an arm once its fraction-late CI half-width "
                        "is at most this (default %(default)g)")
    g.add_argument("--max-replications", type=int, default=64, metavar="N",
                   help="hard per-arm lane budget; an arm that has not "
                        "converged stops here and reports its realized "
                        "half-width (default %(default)s)")
    g.add_argument("--crn", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="common random numbers: share the unit seed list "
                        "across arms so arm deltas are paired contrasts "
                        "(default on)")
    g.add_argument("--antithetic", action="store_true",
                   help="antithetic lane pairs: each unit runs a plain "
                        "lane and its mirrored twin on 1-U uniforms")
    g.add_argument("--ci-method", choices=("wilson", "jeffreys", "t"),
                   default="wilson",
                   help="interval backend for the stopping rule "
                        "(default %(default)s; wilson/jeffreys pool "
                        "lost/resolved counts, t uses per-lane fractions)")
    g.add_argument("--spending", choices=("obf", "pocock"), default="obf",
                   help="alpha-spending shape across looks "
                        "(default %(default)s)")


def _sequential_from(args: argparse.Namespace):
    """Build :class:`SequentialOptions` from the flags, or ``None``.

    ``None`` (no ``--sequential``) keeps the historical fixed-replication
    sweeps bit for bit.
    """
    if not getattr(args, "sequential", False):
        return None
    if args.antithetic and args.ci_method != "t":
        # Mirrored twin lanes are negatively correlated with their
        # partners; a pooled-count interval sees them only as more
        # trials, so the pairing doubles lane cost for no width benefit.
        print(
            f"warning: --antithetic pairs only help --ci-method t; the "
            f"pooled {args.ci_method!r} backend counts mirrored lanes as "
            "plain extra trials, doubling lane cost for no variance "
            "benefit — use --ci-method t (see docs/statistics.md)",
            file=sys.stderr,
        )
    return SequentialOptions(
        ci_target=args.ci_target,
        # A tight --max-replications (smoke grids) lowers the opening
        # ramp with it instead of tripping the min<=max validation.
        min_replications=min(8, max(2, args.max_replications)),
        max_replications=args.max_replications,
        crn=args.crn,
        antithetic=args.antithetic,
        method=args.ci_method,
        spending=args.spending,
    )


def _resilience_from(args: argparse.Namespace):
    """Build :class:`ResilienceOptions` from the flags, or ``None``.

    ``None`` (no flag given) preserves the legacy strict executor: the
    first worker failure propagates.  Any flag opts into supervision.
    """
    flags = (
        args.checkpoint is not None
        or args.resume
        or args.task_timeout is not None
        or args.max_retries is not None
        or args.verify_replay
    )
    if not flags:
        return None
    if args.resume and args.checkpoint is None:
        raise ValueError("--resume requires --checkpoint DIR")
    if args.verify_replay and not args.resume:
        raise ValueError("--verify-replay requires --resume")
    return ResilienceOptions(
        checkpoint=args.checkpoint,
        resume=args.resume,
        task_timeout=args.task_timeout,
        max_retries=2 if args.max_retries is None else args.max_retries,
        verify_replay=args.verify_replay,
    )


def _cmd_figure7(args: argparse.Namespace) -> int:
    config = PanelConfig(rho_prime=args.rho, message_length=args.m)
    panel = generate_panel(
        config,
        include_simulation=args.simulate,
        sim_horizon=args.horizon,
        sim_warmup=args.horizon * 0.125,
        sim_seed=args.seed,
        workers=args.workers,
        sim_fast=not args.no_fast_path,
        sim_backend=args.backend,
        batch=args.batch,
        resilience=_resilience_from(args),
        metrics=getattr(args, "obs_registry", None),
        sequential=_sequential_from(args),
    )
    print(panel.to_csv() if args.csv else panel.to_table())
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    config = Theorem1Config(
        arrival_rate=args.rate,
        deadline=args.deadline,
        transmission=args.m,
        window_length=args.window,
    )
    report = run_theorem1_experiment(
        config, simulate=args.simulate, sim_seed=args.seed
    )
    print(report.to_table())
    ok = report.minimum_slack_is_best() and report.iteration_uses_theorem_elements()
    print(f"\nTheorem 1 verified: {ok}")
    return 0 if ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    lam = args.rho / args.m
    factories = {
        "controlled": lambda: ControlPolicy.optimal(args.deadline, lam),
        "fcfs": lambda: ControlPolicy.uncontrolled_fcfs(lam),
        "lcfs": lambda: ControlPolicy.uncontrolled_lcfs(lam),
        "random": lambda: ControlPolicy.uncontrolled_random(lam),
    }
    fault_model = None
    if args.feedback_error > 0:
        fault_model = FaultModel.feedback_noise(args.feedback_error)
    if args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if args.replications > 1:
        return _simulate_replicated(args, factories[args.protocol](), fault_model)
    simulator = WindowMACSimulator(
        factories[args.protocol](),
        arrival_rate=lam,
        transmission_slots=args.m,
        n_stations=args.stations,
        deadline=args.deadline,
        fault_model=fault_model,
        streams=RandomStreams(args.seed),
        fast=not args.no_fast_path,
        backend=args.backend,
        metrics=getattr(args, "obs_registry", None),
    )
    total_slots = args.horizon * 1.125  # warmup is an eighth of the horizon
    # Time exactly the simulation loop: simulator construction above and
    # the rendering below must not dilute the slots/s figure.
    start = time.perf_counter()
    result = simulator.run(args.horizon, warmup_slots=args.horizon * 0.125)
    elapsed = time.perf_counter() - start
    shares = result.channel.breakdown()
    rows = [
        ["arrivals", str(result.arrivals)],
        ["delivered on time", str(result.delivered_on_time)],
        ["delivered late", str(result.delivered_late)],
        ["discarded (element 4)", str(result.discarded)],
        ["unresolved", str(result.unresolved)],
        ["loss fraction", f"{result.loss_fraction:.4f} ± {2 * result.loss_stderr():.4f}"],
        ["mean true wait", f"{result.mean_true_wait:.2f}"],
        ["mean paper wait", f"{result.mean_paper_wait:.2f}"],
        ["channel utilization", f"{result.channel.utilization():.3f}"],
        [
            "slot shares (idle/coll/tx/wait)",
            "/".join(
                f"{shares[k]:.3f}"
                for k in ("idle", "collision", "transmission", "wait")
            ),
        ],
    ]
    rows.append(["elapsed", f"{elapsed:.2f} s"])
    # Guard the division: a tiny horizon on the fast kernel can finish
    # inside the timer's resolution.
    speed = total_slots / max(elapsed, 1e-9)
    rows.append(["simulation speed", f"{speed:,.0f} slots/s"])
    if fault_model is not None:
        rows.append(["lost to faults", str(result.lost_to_faults)])
        rows.append(["fault telemetry", result.faults.summary()])
    title = (
        f"{args.protocol} protocol: rho'={args.rho}, M={args.m}, "
        f"K={args.deadline}, {args.horizon:.0f} slots"
    )
    print(ascii_table(["metric", "value"], rows, title=title))
    if result.saturated:
        print(
            f"\nwarning: saturated run — {result.unresolved} of "
            f"{result.arrivals} arrivals never resolved; the loss figure "
            "covers only resolved messages (treat it as a lower bound)"
        )
    return 0


def _simulate_replicated(args, policy, fault_model) -> int:
    """``simulate --replications N``: one arm, N lanes, batched.

    Replication seeds spawn from ``--seed`` exactly as the sweep grids
    derive theirs, and each lane uses the plain single-generator
    construction — so the N results match what an N-cell sweep of the
    same arm produces, batched or not.
    """
    lam = args.rho / args.m
    warmup = args.horizon * 0.125
    specs = [
        MACRunSpec(
            policy=policy,
            arrival_rate=lam,
            transmission_slots=args.m,
            horizon=args.horizon,
            warmup=warmup,
            n_stations=args.stations,
            deadline=args.deadline,
            fault_model=fault_model,
            seed=seed,
            fast=not args.no_fast_path,
            backend=args.backend,
        )
        for seed in derive_seeds(args.seed, args.replications)
    ]
    registry = getattr(args, "obs_registry", None)
    instrumented = registry is not None and registry.enabled
    start = time.perf_counter()
    if args.batch:
        entries = (run_batch_with_metrics if instrumented else run_batch)(specs)
    else:
        task = run_spec_with_metrics if instrumented else run_spec
        entries = [task(spec) for spec in specs]
    elapsed = time.perf_counter() - start
    if instrumented:
        results = []
        for result, state in entries:
            results.append(result)
            registry.merge_from(MetricsRegistry.from_dict(state))
    else:
        results = entries

    rows = []
    for spec, result in zip(specs, results):
        rows.append(
            [
                str(spec.seed),
                str(result.arrivals),
                str(result.delivered_on_time),
                str(result.delivered_late),
                str(result.discarded),
                f"{result.loss_fraction:.4f} ± {2 * result.loss_stderr():.4f}",
                f"{result.mean_true_wait:.2f}",
            ]
        )
    losses = [result.loss_fraction for result in results]
    n = len(losses)
    mean = sum(losses) / n
    var = sum((x - mean) ** 2 for x in losses) / (n - 1)
    stderr = (var / n) ** 0.5
    lane_slots = args.horizon * 1.125  # warmup is an eighth of the horizon
    speed = n * lane_slots / max(elapsed, 1e-9)
    mode = "batched lanes" if args.batch else "sequential"
    print(
        ascii_table(
            ["seed", "arrivals", "on time", "late", "discarded",
             "loss", "mean wait"],
            rows,
            title=(
                f"{args.protocol} protocol × {n} replications ({mode}): "
                f"rho'={args.rho}, M={args.m}, K={args.deadline}, "
                f"{args.horizon:.0f} slots"
            ),
        )
    )
    print(
        f"\nacross replications: loss {mean:.4f} ± {2 * stderr:.4f} "
        f"(±2 se over {n} seeds)"
    )
    print(
        f"elapsed {elapsed:.2f} s — {speed:,.0f} slots/s aggregate, "
        f"{speed / n:,.0f} slots/s per lane"
    )
    saturated = sum(1 for result in results if result.saturated)
    if saturated:
        print(
            f"\nwarning: {saturated} of {n} replications saturated; their "
            "loss figures cover only resolved messages"
        )
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    config = RobustnessConfig(
        rho_prime=args.rho,
        message_length=args.m,
        deadline_factor=args.deadline_factor,
        n_stations=args.stations,
        horizon=args.horizon,
        n_seeds=args.seeds,
        base_seed=args.seed,
    )
    resilience = _resilience_from(args)
    metrics = getattr(args, "obs_registry", None)
    sequential = _sequential_from(args)
    if args.feedback_errors:
        report = protocol_degradation_sweep(
            config, error_rates=tuple(args.errors), recovery=args.recovery,
            workers=args.workers, resilience=resilience, metrics=metrics,
            batch=args.batch, backend=args.backend, sequential=sequential,
        )
        print(report.to_table())
        return 0
    if args.scenario == "feedback":
        report = feedback_error_sweep(
            config, error_rates=tuple(args.errors), workers=args.workers,
            resilience=resilience, metrics=metrics, batch=args.batch,
            backend=args.backend, sequential=sequential,
        )
        print(report.to_table())
        return 0
    if sequential is not None:
        raise ValueError(
            "--sequential applies to the feedback sweeps, not the "
            "station-failure soak (a liveness scenario, not an estimator)"
        )
    results = station_failure_scenario(
        config, workers=args.workers, resilience=resilience, metrics=metrics,
        batch=args.batch, backend=args.backend,
    )
    rows = []
    holes = 0
    for i, result in enumerate(results):
        if result is None:
            # A quarantined replication stays a visible row, never a
            # silently shorter table.
            holes += 1
            rows.append([str(config.base_seed + i), "[quarantined]"]
                        + ["-"] * 6)
            continue
        t = result.faults
        rows.append(
            [
                str(config.base_seed + i),
                f"{result.loss_fraction:.4f}",
                str(result.lost_to_faults),
                str(t.crashes),
                str(t.restarts),
                str(t.deaf_events),
                str(t.resyncs),
                str(t.peak_cohorts),
            ]
        )
    status = (
        "all runs completed"
        if holes == 0
        else f"{holes} of {len(results)} runs quarantined"
    )
    print(
        ascii_table(
            ["seed", "loss", "fault-lost", "crashes", "restarts",
             "deaf", "resyncs", "peak cohorts"],
            rows,
            title=(
                f"Station-failure soak: rho'={config.rho_prime:g}, "
                f"M={config.message_length}, K={config.deadline:g}, "
                f"{config.horizon:g} slots ({status})"
            ),
        )
    )
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    rows = []
    for m in args.m:
        report = max_stable_throughput(m)
        rows.append(
            [str(m), f"{report.scheduling_overhead:.3f}",
             f"{report.max_throughput:.5f}", f"{report.utilization_bound:.4f}"]
        )
    print(
        ascii_table(
            ["M", "overhead E[T] (slots)", "max throughput (msg/slot)",
             "max offered load rho'"],
            rows,
            title="Window-protocol capacity (occupancy heuristic)",
        )
    )
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    if not args.simulate:
        arms = window_length_ablation(simulate=False)
        print(ablation_table(
            arms, "Element 2: loss vs window occupancy (analytic)"))
        print()
        print(twopoint_fit_errors())
        return 0
    resilience = _resilience_from(args)
    metrics = getattr(args, "obs_registry", None)
    sequential = _sequential_from(args)
    horizon = args.horizon
    warmup = horizon * 0.125
    sections = [
        ("Element 4: sender discard on/off (simulated)",
         element4_ablation(
             horizon=horizon, warmup=warmup, seed=args.seed,
             workers=args.workers, resilience=resilience, metrics=metrics,
             batch=args.batch, backend=args.backend, sequential=sequential)),
        ("Element 2: loss vs window occupancy (simulated)",
         window_length_ablation(
             simulate=True, horizon=horizon, warmup=warmup, seed=args.seed + 1,
             workers=args.workers, resilience=resilience, metrics=metrics,
             batch=args.batch, backend=args.backend, sequential=sequential)),
        ("Element 3: split order (simulated)",
         split_rule_ablation(
             horizon=horizon, warmup=warmup, seed=args.seed + 2,
             workers=args.workers, resilience=resilience, metrics=metrics,
             batch=args.batch, backend=args.backend, sequential=sequential)),
        ("Section 5: split arity (simulated)",
         arity_ablation(
             horizon=horizon, warmup=warmup, seed=args.seed + 3,
             workers=args.workers, resilience=resilience, metrics=metrics,
             batch=args.batch, backend=args.backend, sequential=sequential)),
    ]
    print("\n\n".join(ablation_table(arms, title) for title, arms in sections))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    if args.scenario == "scheduling":
        # Analytic comparison: exact scheduling-time law vs the paper's
        # geometric approximation — no simulation, no workers.
        if getattr(args, "sequential", False):
            raise ValueError(
                "--sequential does not apply to the analytic "
                "scheduling-law comparison"
            )
        rows = scheduling_model_sensitivity()
        print(ascii_table(
            ["deadline K", "exact loss", "geometric loss", "gap"], rows,
            title="Eq. 4.7 sensitivity to the scheduling-time law",
        ))
        return 0
    resilience = _resilience_from(args)
    metrics = getattr(args, "obs_registry", None)
    sequential = _sequential_from(args)
    overrides = {}
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
        overrides["warmup"] = args.horizon * 0.125
    if args.scenario == "stations":
        arms = station_count_sensitivity(
            seed=args.seed, workers=args.workers, resilience=resilience,
            metrics=metrics, batch=args.batch, backend=args.backend,
            sequential=sequential, **overrides,
        )
        title = "Loss vs station population (controlled protocol)"
    else:
        arms = burstiness_sensitivity(
            seed=args.seed, workers=args.workers, resilience=resilience,
            metrics=metrics, batch=args.batch, backend=args.backend,
            sequential=sequential, **overrides,
        )
        title = "Loss vs traffic burstiness (MMPP, fixed mean rate)"
    print(ablation_table(arms, title))
    return 0


def _cmd_validity(args: argparse.Namespace) -> int:
    config = ValidityConfig(
        rho_primes=tuple(args.rho),
        message_lengths=tuple(args.m),
        deadline_factors=tuple(args.deadline_factors),
        families=tuple(args.families),
        horizon=args.horizon,
        warmup=args.horizon * 0.125,
        seed=args.seed,
        agreement_tol=args.tolerance,
    )
    report = run_validity(
        config,
        workers=args.workers,
        resilience=_resilience_from(args),
        metrics=getattr(args, "obs_registry", None),
        batch=args.batch,
        backend=args.backend,
        sequential=_sequential_from(args),
    )
    print(report.to_csv() if args.csv else report.to_table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.action == "show":
        if len(args.files) != 1:
            raise ValueError("report show takes exactly one FILE")
        print(render_report(load_report(args.files[0])))
        return 0
    if len(args.files) != 2:
        raise ValueError("report diff takes exactly two FILEs")
    a = load_report(args.files[0])
    b = load_report(args.files[1])
    lines = diff_reports(a, b, include_volatile=args.all)
    if not lines:
        print("reports agree: no metric drift")
        return 0
    print(f"{len(lines)} difference(s):")
    for line in lines:
        print(f"  {line}")
    return 1


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "clear":
        removed = cache.clear_disk()
        cache.clear_memory()
        print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.cache_dir()}")
        return 0
    info = cache.cache_info()
    rows = [
        ["path", info["path"]],
        ["schema", info["schema"]],
        ["enabled", "yes" if info["enabled"] else "no (REPRO_NO_CACHE)"],
        ["entries", str(info["entries"])],
        ["size", f"{info['bytes'] / 1024:.1f} KiB"],
    ]
    print(ascii_table(["field", "value"], rows, title="Disk memo cache"))
    return 0


def _load_grid(source: str) -> dict:
    """A grid argument: inline JSON (starts with ``{``) or a file path."""
    text = source
    if not source.lstrip().startswith("{"):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        grid = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"grid is not valid JSON: {error}") from error
    if not isinstance(grid, dict):
        raise ValueError("grid must be a JSON object")
    return grid


def _cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        state_dir=args.state,
        host=args.host,
        port=args.port,
        max_jobs=args.max_jobs,
        lease_ttl=args.lease_ttl,
        shard_size=args.shard_size,
        backend_slots=args.slots,
        sweep_workers=args.workers,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries if args.max_retries is not None else 2,
        batch=args.batch,
    )
    print(f"serving sweep jobs from state dir {args.state} "
          f"(SIGTERM or 'repro drain' to stop)", file=sys.stderr)
    asyncio.run(_serve_daemon(
        config, metrics=args.obs_registry, tracer=current_tracer()
    ))
    print("drained cleanly", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.state, timeout=args.rpc_timeout)
    grid = _load_grid(args.grid)
    response = client.submit(grid)
    job_id = response["job_id"]
    print(f"submitted {job_id}: {response['cells']} cell(s) in "
          f"{response['shards']} shard(s)")
    if not args.wait:
        return 0
    done = client.wait(job_id, timeout=args.timeout,
                       results=args.results is not None)
    job = done["job"]
    print(f"{job_id}: {job['state']} — {job['cells_done']}/{job['cells']} "
          f"cells, {job['redispatches']} redispatch(es), "
          f"{job['holes']} hole(s)")
    if args.results is not None and "results" in done:
        with open(args.results, "w", encoding="utf-8") as handle:
            json.dump(done["results"], handle, indent=2)
        print(f"results written to {args.results}", file=sys.stderr)
    if job["state"] != "completed" or job["holes"]:
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.state, timeout=args.rpc_timeout)
    if args.job_id is None:
        jobs = client.jobs()["jobs"]
        if not jobs:
            print("no jobs")
            return 0
        rows = [
            [j["job_id"], str(j["kind"]), j["state"],
             f"{j['cells_done']}/{j['cells']}", str(j["redispatches"]),
             str(j["holes"])]
            for j in jobs
        ]
        print(ascii_table(
            ["job", "kind", "state", "cells", "redisp", "holes"], rows,
            title="Sweep service jobs",
        ))
        return 0
    response = client.status(args.job_id, results=args.results is not None)
    job = response["job"]
    for key in ("job_id", "kind", "state", "cells", "cells_done", "shards",
                "shards_done", "redispatches", "holes", "error"):
        print(f"{key}: {job[key]}")
    if "results_path" in response:
        print(f"results_path: {response['results_path']}")
    if args.results is not None and "results" in response:
        with open(args.results, "w", encoding="utf-8") as handle:
            json.dump(response["results"], handle, indent=2)
        print(f"results written to {args.results}", file=sys.stderr)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = ServiceClient(args.state, timeout=args.rpc_timeout)
    response = client.cancel(args.job_id)
    if response.get("already"):
        print(f"{args.job_id} already terminal: {response['state']}")
    else:
        print(f"{args.job_id} cancelled "
              f"({response['leases_released']} lease(s) released)")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    client = ServiceClient(args.state, timeout=args.rpc_timeout)
    response = client.drain()
    print(f"draining ({response['active']} active job(s) to finish)")
    if not args.wait:
        return 0
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        try:
            client.ping()
        except ServiceError as error:
            if error.code == 0:  # endpoint gone: drain finished
                print("server exited cleanly")
                return 0
            raise
        time.sleep(0.2)
    print(f"error: server still up after {args.timeout}s", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kurose/Schwartz/Yemini (1983) window-protocol reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure7", help="regenerate one Figure-7 panel")
    p.add_argument("--rho", type=float, default=0.5, help="offered load rho'")
    p.add_argument("--m", type=int, default=25, help="message length M (tau)")
    p.add_argument("--simulate", action="store_true", help="add simulation arms")
    p.add_argument("--horizon", type=float, default=80_000.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", action="store_true", help="CSV instead of a table")
    p.add_argument("--workers", type=int, default=None,
                   help="fan simulation arms over N worker processes "
                        "(results are identical for any N; see docs/usage.md)")
    p.add_argument("--no-fast-path", action="store_true",
                   help="force the reference simulation loop (the fast "
                        "kernel is bit-identical; this is the escape hatch)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel for the arms: auto (default "
                        "chain), reference loop, fast kernel, or the "
                        "compiled struct-of-arrays backend (jitted when "
                        "numba is installed; all are bit-identical)")
    _add_batch_flag(p)
    _add_resilience_flags(p)
    _add_sequential_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_figure7)

    p = sub.add_parser("theorem1", help="verify Theorem 1 numerically")
    p.add_argument("--rate", type=float, default=0.15)
    p.add_argument("--deadline", type=int, default=10)
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--window", type=int, default=4)
    p.add_argument("--simulate", action="store_true")
    p.add_argument("--seed", type=int, default=11,
                   help="master seed for the simulation arms")
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_theorem1)

    p = sub.add_parser("simulate", help="one slot-level protocol run")
    p.add_argument("--protocol", choices=("controlled", "fcfs", "lcfs", "random"),
                   default="controlled")
    p.add_argument("--rho", type=float, default=0.5)
    p.add_argument("--m", type=int, default=25)
    p.add_argument("--deadline", type=float, default=100.0)
    p.add_argument("--stations", type=int, default=200)
    p.add_argument("--horizon", type=float, default=100_000.0)
    p.add_argument("--seed", type=int, default=1,
                   help="master seed for all random streams")
    p.add_argument("--feedback-error", type=float, default=0.0,
                   help="symmetric feedback-error rate (routes the run "
                        "through the fault-injection layer)")
    p.add_argument("--no-fast-path", action="store_true",
                   help="force the reference simulation loop (the fast "
                        "kernel is bit-identical; this is the escape hatch)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel: auto (default chain), reference "
                        "loop, fast kernel, or the compiled struct-of-arrays "
                        "backend (jitted when numba is installed; all are "
                        "bit-identical — see docs/performance.md)")
    p.add_argument("--replications", type=int, default=1, metavar="N",
                   help="run N independent replications of the arm as "
                        "lane-parallel batched lanes (seeds spawned from "
                        "--seed; reports per-lane and aggregate slots/s)")
    _add_batch_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("capacity", help="protocol capacity vs message length")
    p.add_argument("--m", type=int, nargs="+", default=[1, 5, 25, 100, 400])
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (analytic, no randomness)")
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("ablations",
                       help="design-choice ablations (analytic by default)")
    p.add_argument("--simulate", action="store_true",
                   help="run the simulation arms (elements 2/3/4 and "
                        "split arity) instead of the analytic tables")
    p.add_argument("--horizon", type=float, default=150_000.0,
                   help="simulated slots per arm (with --simulate)")
    p.add_argument("--seed", type=int, default=5,
                   help="base seed of the simulation arms (the analytic "
                        "mode accepts it as a no-op)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan simulation arms over N worker processes "
                        "(results are identical for any N)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel for the arms: auto (default "
                        "chain), reference loop, fast kernel, or the "
                        "compiled struct-of-arrays backend (all are "
                        "bit-identical)")
    _add_batch_flag(p)
    _add_resilience_flags(p)
    _add_sequential_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("sensitivity",
                       help="sensitivity to the paper's modelling assumptions")
    p.add_argument("--scenario",
                   choices=("stations", "burstiness", "scheduling"),
                   default="stations",
                   help="stations = population size; burstiness = MMPP "
                        "peak/mean; scheduling = exact vs geometric law "
                        "(analytic)")
    p.add_argument("--horizon", type=float, default=None,
                   help="simulated slots per arm (default: the "
                        "scenario's published horizon)")
    p.add_argument("--seed", type=int, default=41,
                   help="master seed of the simulation arms")
    p.add_argument("--workers", type=int, default=None,
                   help="fan sweep cells over N worker processes "
                        "(results are identical for any N)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel for the arms: auto (default "
                        "chain), reference loop, fast kernel, or the "
                        "compiled struct-of-arrays backend (all are "
                        "bit-identical)")
    _add_batch_flag(p)
    _add_resilience_flags(p)
    _add_sequential_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser(
        "validity",
        help="map where the eq. 4.7 analysis breaks under "
             "nonstationary workloads",
    )
    p.add_argument("--families", nargs="+", choices=SCENARIO_FAMILIES,
                   default=list(SCENARIO_FAMILIES), metavar="FAMILY",
                   help="scenario families to sweep (default: all of "
                        f"{', '.join(SCENARIO_FAMILIES)})")
    p.add_argument("--rho", type=float, nargs="+", default=[0.25, 0.50, 0.75],
                   help="offered loads rho' (default: the Figure-7 grid)")
    p.add_argument("--m", type=int, nargs="+", default=[25, 100],
                   help="message lengths M (default: the Figure-7 grid)")
    p.add_argument("--deadline-factors", type=float, nargs="+",
                   default=[1.0, 3.0, 6.0], metavar="F",
                   help="deadlines as multiples of M: K = F*M")
    p.add_argument("--horizon", type=float, default=60_000.0,
                   help="simulated slots per cell (warmup adds 12.5%%)")
    p.add_argument("--tolerance", type=float, default=DEFAULT_AGREEMENT_TOL,
                   help="|simulated - analytic| agreement tolerance "
                        "(default %(default)g)")
    p.add_argument("--seed", type=int, default=7,
                   help="seed shared by every cell (one seed, one sweep)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan sweep cells over N worker processes "
                        "(results are identical for any N)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel (all backends are bit-identical)")
    p.add_argument("--csv", action="store_true",
                   help="emit the per-cell map as CSV instead of tables")
    _add_batch_flag(p)
    _add_resilience_flags(p)
    _add_sequential_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_validity)

    p = sub.add_parser("robustness", help="fault-injection degradation runs")
    p.add_argument("--scenario", choices=("feedback", "failures"),
                   default="feedback",
                   help="feedback = loss vs error-rate sweep; "
                        "failures = crash/deafness soak")
    p.add_argument("--feedback-errors", action="store_true",
                   help="run the per-protocol degradation sweep (fraction "
                        "late vs feedback error rate for all four window "
                        "protocols on the Figure-7 grid) instead of the "
                        "single-protocol scenario sweeps")
    p.add_argument("--recovery", choices=RECOVERY_POLICIES,
                   default="reset-to-epoch",
                   help="divergence-recovery policy of the degradation "
                        "sweep (with --feedback-errors)")
    p.add_argument("--rho", type=float, default=0.5)
    p.add_argument("--m", type=int, default=25)
    p.add_argument("--deadline-factor", type=float, default=3.0,
                   help="constraint K as a multiple of M")
    p.add_argument("--stations", type=int, default=25)
    p.add_argument("--horizon", type=float, default=60_000.0)
    p.add_argument("--seeds", type=int, default=3,
                   help="number of replications per fault setting")
    p.add_argument("--seed", type=int, default=1,
                   help="master seed of the first replication")
    p.add_argument("--errors", type=float, nargs="+",
                   default=list(DEFAULT_ERROR_RATES),
                   help="error rates of the feedback sweep")
    p.add_argument("--workers", type=int, default=None,
                   help="fan replications over N worker processes "
                        "(results are identical for any N)")
    p.add_argument("--backend", choices=("auto", "reference", "fast", "compiled"),
                   default=None,
                   help="simulation kernel for the runs: auto (default "
                        "chain), reference loop, fast kernel, or the "
                        "compiled struct-of-arrays backend (all are "
                        "bit-identical; faulted runs fall back from "
                        "compiled to the fast kernel)")
    _add_batch_flag(p)
    _add_resilience_flags(p)
    _add_sequential_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser("report",
                       help="render or diff run reports (report.json)")
    p.add_argument("action", choices=("show", "diff"),
                   help="show = render one report; diff = compare the "
                        "deterministic metrics of two")
    p.add_argument("files", nargs="+", metavar="FILE",
                   help="one report for show, two for diff")
    p.add_argument("--all", action="store_true",
                   help="include volatile metrics (timings, cache hits, "
                        "retries) in the diff")
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (no randomness)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("cache", help="inspect or purge the disk memo cache")
    p.add_argument("action", choices=("info", "clear"),
                   help="info = path/schema/entry count; clear = delete "
                        "every disk entry (any schema)")
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (no randomness)")
    p.set_defaults(func=_cmd_cache)

    def _add_state_flag(sp, required=True):
        sp.add_argument("--state", required=required, metavar="DIR",
                        help="service state directory (job table, "
                             "journals, results, endpoint)")
        sp.add_argument("--rpc-timeout", type=float, default=30.0,
                        metavar="SECONDS", help="per-request socket timeout")
        sp.add_argument("--seed", type=int, default=1,
                        help="accepted for uniformity (no randomness)")

    p = sub.add_parser("serve",
                       help="run the sweep job daemon (see docs/service.md)")
    p.add_argument("--state", required=True, metavar="DIR",
                   help="durable state directory; restarting with the same "
                        "DIR recovers in-flight jobs")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; clients read the "
                        "bound port from DIR/endpoint.json)")
    p.add_argument("--max-jobs", type=int, default=8,
                   help="active-job admission bound (excess submits get 429)")
    p.add_argument("--lease-ttl", type=float, default=30.0, metavar="SECONDS",
                   help="shard lease TTL; a shard silent this long is "
                        "declared dead and re-dispatched")
    p.add_argument("--shard-size", type=int, default=64,
                   help="cells per dispatch shard")
    p.add_argument("--slots", type=int, default=2,
                   help="concurrent in-flight shards")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes per shard sweep (default inline)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS", help="wall-clock budget per cell")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="attempts per cell beyond the first (default 2)")
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (no randomness)")
    _add_batch_flag(p)
    _add_obs_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a sweep grid to the daemon")
    _add_state_flag(p)
    p.add_argument("grid",
                   help="grid spec: inline JSON object or a path to a JSON "
                        "file, e.g. '{\"kind\": \"figure7\", \"rho\": 0.5}'")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job is terminal (exit 1 on failure "
                        "or holes)")
    p.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS",
                   help="--wait budget")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="with --wait: write the completed job's results "
                        "JSON to FILE")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status", help="show daemon jobs (or one job)")
    _add_state_flag(p)
    p.add_argument("job_id", nargs="?", default=None,
                   help="job to show (omit for the full table)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="write a completed job's results JSON to FILE")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("cancel", help="cancel a submitted job")
    _add_state_flag(p)
    p.add_argument("job_id")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser("drain",
                       help="gracefully drain the daemon (finish admitted "
                            "jobs, refuse new ones, exit)")
    _add_state_flag(p)
    p.add_argument("--wait", action="store_true",
                   help="block until the server has exited")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                   help="--wait budget")
    p.set_defaults(func=_cmd_drain)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    registry, tracer = _obs_setup(args)
    try:
        started = time.perf_counter()
        code = args.func(args)
        if registry is not None:
            # The report is written for any completed command (theorem1
            # exits 1 on a falsified theorem but still produced a run).
            report = build_report(
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                seed=getattr(args, "seed", None),
                metrics=registry,
                timings={"total_s": time.perf_counter() - started},
            )
            write_report(args.metrics, report)
            print(f"report written to {args.metrics}", file=sys.stderr)
        return code
    except (ValueError, FileNotFoundError) as error:
        # Domain validation (bad rates, loads, fault probabilities…) and
        # resume-without-journal: report cleanly instead of dumping a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (JournalSchemaError, JournalMismatchError) as error:
        # Checkpoint-layer failures have their own exit code so CI can
        # distinguish "stale journal" from a bad parameterisation.
        print(f"journal error: {error}", file=sys.stderr)
        return 3
    except ServiceError as error:
        # Service refusals (429/503/404) and unreachable servers: their
        # own exit code so scripts can retry busy vs give up on absent.
        print(f"service error: {error}", file=sys.stderr)
        return 4
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    finally:
        # Uninstall even on failure so one CLI call (or test) can never
        # leak its registry/tracer into the next.
        _obs_teardown(registry, tracer)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

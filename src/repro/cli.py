"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure7``     regenerate one Figure-7 panel (table/CSV to stdout)
``theorem1``    run the Theorem-1 verification sweep
``simulate``    one slot-level protocol run with chosen parameters
``capacity``    print the protocol's capacity figures for a range of M
``ablations``   run the fast (analytic) ablations
``robustness``  fault-injection degradation experiments

Every command accepts ``--seed`` (default 1); stochastic commands feed
it into a :class:`~repro.des.rng.RandomStreams` family so a run is
exactly reproducible from that single number, and the deterministic
analytic commands accept it as a no-op for interface uniformity.

Examples
--------
::

    python -m repro figure7 --rho 0.75 --m 25
    python -m repro figure7 --rho 0.5 --m 25 --simulate --csv
    python -m repro simulate --rho 0.75 --m 25 --deadline 75 --protocol lcfs
    python -m repro simulate --rho 0.5 --m 25 --feedback-error 0.02
    python -m repro theorem1 --deadline 10
    python -m repro capacity
    python -m repro robustness --seeds 3
    python -m repro robustness --scenario failures
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import ControlPolicy
from .crp.capacity import max_stable_throughput
from .des.rng import RandomStreams
from .experiments import (
    DEFAULT_ERROR_RATES,
    PanelConfig,
    RobustnessConfig,
    Theorem1Config,
    ablation_table,
    ascii_table,
    feedback_error_sweep,
    generate_panel,
    run_theorem1_experiment,
    station_failure_scenario,
    twopoint_fit_errors,
    window_length_ablation,
)
from .faults import FaultModel
from .mac import WindowMACSimulator

__all__ = ["main"]


def _cmd_figure7(args: argparse.Namespace) -> int:
    config = PanelConfig(rho_prime=args.rho, message_length=args.m)
    panel = generate_panel(
        config,
        include_simulation=args.simulate,
        sim_horizon=args.horizon,
        sim_warmup=args.horizon * 0.125,
        sim_seed=args.seed,
        workers=args.workers,
        sim_fast=not args.no_fast_path,
    )
    print(panel.to_csv() if args.csv else panel.to_table())
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    config = Theorem1Config(
        arrival_rate=args.rate,
        deadline=args.deadline,
        transmission=args.m,
        window_length=args.window,
    )
    report = run_theorem1_experiment(
        config, simulate=args.simulate, sim_seed=args.seed
    )
    print(report.to_table())
    ok = report.minimum_slack_is_best() and report.iteration_uses_theorem_elements()
    print(f"\nTheorem 1 verified: {ok}")
    return 0 if ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    lam = args.rho / args.m
    factories = {
        "controlled": lambda: ControlPolicy.optimal(args.deadline, lam),
        "fcfs": lambda: ControlPolicy.uncontrolled_fcfs(lam),
        "lcfs": lambda: ControlPolicy.uncontrolled_lcfs(lam),
        "random": lambda: ControlPolicy.uncontrolled_random(lam),
    }
    fault_model = None
    if args.feedback_error > 0:
        fault_model = FaultModel.feedback_noise(args.feedback_error)
    simulator = WindowMACSimulator(
        factories[args.protocol](),
        arrival_rate=lam,
        transmission_slots=args.m,
        n_stations=args.stations,
        deadline=args.deadline,
        fault_model=fault_model,
        streams=RandomStreams(args.seed),
        fast=not args.no_fast_path,
    )
    total_slots = args.horizon * 1.125  # warmup is an eighth of the horizon
    start = time.perf_counter()
    result = simulator.run(args.horizon, warmup_slots=args.horizon * 0.125)
    elapsed = time.perf_counter() - start
    shares = result.channel.breakdown()
    rows = [
        ["arrivals", str(result.arrivals)],
        ["delivered on time", str(result.delivered_on_time)],
        ["delivered late", str(result.delivered_late)],
        ["discarded (element 4)", str(result.discarded)],
        ["unresolved", str(result.unresolved)],
        ["loss fraction", f"{result.loss_fraction:.4f} ± {2 * result.loss_stderr():.4f}"],
        ["mean true wait", f"{result.mean_true_wait:.2f}"],
        ["mean paper wait", f"{result.mean_paper_wait:.2f}"],
        ["channel utilization", f"{result.channel.utilization():.3f}"],
        [
            "slot shares (idle/coll/tx/wait)",
            "/".join(
                f"{shares[k]:.3f}"
                for k in ("idle", "collision", "transmission", "wait")
            ),
        ],
    ]
    rows.append(["elapsed", f"{elapsed:.2f} s"])
    rows.append(["simulation speed", f"{total_slots / elapsed:,.0f} slots/s"])
    if fault_model is not None:
        rows.append(["lost to faults", str(result.lost_to_faults)])
        rows.append(["fault telemetry", result.faults.summary()])
    title = (
        f"{args.protocol} protocol: rho'={args.rho}, M={args.m}, "
        f"K={args.deadline}, {args.horizon:.0f} slots"
    )
    print(ascii_table(["metric", "value"], rows, title=title))
    if result.saturated:
        print(
            f"\nwarning: saturated run — {result.unresolved} of "
            f"{result.arrivals} arrivals never resolved; the loss figure "
            "covers only resolved messages (treat it as a lower bound)"
        )
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    config = RobustnessConfig(
        rho_prime=args.rho,
        message_length=args.m,
        deadline_factor=args.deadline_factor,
        n_stations=args.stations,
        horizon=args.horizon,
        n_seeds=args.seeds,
        base_seed=args.seed,
    )
    if args.scenario == "feedback":
        report = feedback_error_sweep(
            config, error_rates=tuple(args.errors), workers=args.workers
        )
        print(report.to_table())
        return 0
    results = station_failure_scenario(config, workers=args.workers)
    rows = []
    for i, result in enumerate(results):
        t = result.faults
        rows.append(
            [
                str(config.base_seed + i),
                f"{result.loss_fraction:.4f}",
                str(result.lost_to_faults),
                str(t.crashes),
                str(t.restarts),
                str(t.deaf_events),
                str(t.resyncs),
                str(t.peak_cohorts),
            ]
        )
    print(
        ascii_table(
            ["seed", "loss", "fault-lost", "crashes", "restarts",
             "deaf", "resyncs", "peak cohorts"],
            rows,
            title=(
                f"Station-failure soak: rho'={config.rho_prime:g}, "
                f"M={config.message_length}, K={config.deadline:g}, "
                f"{config.horizon:g} slots (all runs completed)"
            ),
        )
    )
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    rows = []
    for m in args.m:
        report = max_stable_throughput(m)
        rows.append(
            [str(m), f"{report.scheduling_overhead:.3f}",
             f"{report.max_throughput:.5f}", f"{report.utilization_bound:.4f}"]
        )
    print(
        ascii_table(
            ["M", "overhead E[T] (slots)", "max throughput (msg/slot)",
             "max offered load rho'"],
            rows,
            title="Window-protocol capacity (occupancy heuristic)",
        )
    )
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    arms = window_length_ablation(simulate=False)
    print(ablation_table(arms, "Element 2: loss vs window occupancy (analytic)"))
    print()
    print(twopoint_fit_errors())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kurose/Schwartz/Yemini (1983) window-protocol reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure7", help="regenerate one Figure-7 panel")
    p.add_argument("--rho", type=float, default=0.5, help="offered load rho'")
    p.add_argument("--m", type=int, default=25, help="message length M (tau)")
    p.add_argument("--simulate", action="store_true", help="add simulation arms")
    p.add_argument("--horizon", type=float, default=80_000.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--csv", action="store_true", help="CSV instead of a table")
    p.add_argument("--workers", type=int, default=None,
                   help="fan simulation arms over N worker processes "
                        "(results are identical for any N; see docs/usage.md)")
    p.add_argument("--no-fast-path", action="store_true",
                   help="force the reference simulation loop (the fast "
                        "kernel is bit-identical; this is the escape hatch)")
    p.set_defaults(func=_cmd_figure7)

    p = sub.add_parser("theorem1", help="verify Theorem 1 numerically")
    p.add_argument("--rate", type=float, default=0.15)
    p.add_argument("--deadline", type=int, default=10)
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--window", type=int, default=4)
    p.add_argument("--simulate", action="store_true")
    p.add_argument("--seed", type=int, default=11,
                   help="master seed for the simulation arms")
    p.set_defaults(func=_cmd_theorem1)

    p = sub.add_parser("simulate", help="one slot-level protocol run")
    p.add_argument("--protocol", choices=("controlled", "fcfs", "lcfs", "random"),
                   default="controlled")
    p.add_argument("--rho", type=float, default=0.5)
    p.add_argument("--m", type=int, default=25)
    p.add_argument("--deadline", type=float, default=100.0)
    p.add_argument("--stations", type=int, default=200)
    p.add_argument("--horizon", type=float, default=100_000.0)
    p.add_argument("--seed", type=int, default=1,
                   help="master seed for all random streams")
    p.add_argument("--feedback-error", type=float, default=0.0,
                   help="symmetric feedback-error rate (routes the run "
                        "through the fault-injection layer)")
    p.add_argument("--no-fast-path", action="store_true",
                   help="force the reference simulation loop (the fast "
                        "kernel is bit-identical; this is the escape hatch)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("capacity", help="protocol capacity vs message length")
    p.add_argument("--m", type=int, nargs="+", default=[1, 5, 25, 100, 400])
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (analytic, no randomness)")
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("ablations", help="fast analytic ablations")
    p.add_argument("--seed", type=int, default=1,
                   help="accepted for uniformity (analytic, no randomness)")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("robustness", help="fault-injection degradation runs")
    p.add_argument("--scenario", choices=("feedback", "failures"),
                   default="feedback",
                   help="feedback = loss vs error-rate sweep; "
                        "failures = crash/deafness soak")
    p.add_argument("--rho", type=float, default=0.5)
    p.add_argument("--m", type=int, default=25)
    p.add_argument("--deadline-factor", type=float, default=3.0,
                   help="constraint K as a multiple of M")
    p.add_argument("--stations", type=int, default=25)
    p.add_argument("--horizon", type=float, default=60_000.0)
    p.add_argument("--seeds", type=int, default=3,
                   help="number of replications per fault setting")
    p.add_argument("--seed", type=int, default=1,
                   help="master seed of the first replication")
    p.add_argument("--errors", type=float, nargs="+",
                   default=list(DEFAULT_ERROR_RATES),
                   help="error rates of the feedback sweep")
    p.add_argument("--workers", type=int, default=None,
                   help="fan replications over N worker processes "
                        "(results are identical for any N)")
    p.set_defaults(func=_cmd_robustness)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as error:
        # Domain validation (bad rates, loads, fault probabilities…):
        # report cleanly instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Tests for arrival-process generators."""

import numpy as np
import pytest

from repro.workloads import MMPPWorkload, PoissonWorkload


class TestPoisson:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonWorkload(0.0)

    def test_mean_rate(self):
        assert PoissonWorkload(0.05).mean_rate == 0.05

    def test_count_matches_rate(self, rng):
        times, stations = PoissonWorkload(0.05).generate(100_000.0, 10, rng)
        assert times.size == pytest.approx(5000, rel=0.1)

    def test_sorted_and_in_range(self, rng):
        times, stations = PoissonWorkload(0.02).generate(10_000.0, 5, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() < 10_000.0
        assert stations.min() >= 0 and stations.max() < 5

    def test_interarrivals_exponential(self, rng):
        times, _ = PoissonWorkload(0.1).generate(500_000.0, 4, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(10.0, rel=0.05)
        assert gaps.std() == pytest.approx(10.0, rel=0.1)  # exponential CV = 1


class TestMMPP:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MMPPWorkload(0.1, 0.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            MMPPWorkload(0.1, 0.5, 0.0, 10.0)

    def test_mean_rate_weighted(self):
        w = MMPPWorkload(low_rate=0.0, high_rate=0.2, mean_low=100.0, mean_high=100.0)
        assert w.mean_rate == pytest.approx(0.1)

    def test_count_matches_mean_rate(self, rng):
        w = MMPPWorkload(0.01, 0.19, 500.0, 500.0)
        times, _ = w.generate(200_000.0, 8, rng)
        assert times.size == pytest.approx(w.mean_rate * 200_000, rel=0.15)

    def test_burstier_than_poisson(self, rng):
        """MMPP interarrival CV exceeds 1 (the Poisson value)."""
        w = MMPPWorkload(0.005, 0.2, 2000.0, 2000.0)
        times, _ = w.generate(400_000.0, 8, rng)
        gaps = np.diff(times)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_sorted_output(self, rng):
        w = MMPPWorkload(0.01, 0.1, 100.0, 100.0)
        times, stations = w.generate(50_000.0, 4, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.size == stations.size

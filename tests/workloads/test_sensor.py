"""Tests for the sensor-network workload."""

import numpy as np
import pytest

from repro.workloads import SensorWorkload


def make(**kwargs):
    defaults = dict(n_sensors=10, report_period=100.0, report_jitter=1.0)
    defaults.update(kwargs)
    return SensorWorkload(**defaults)


class TestValidation:
    def test_needs_sensors(self):
        with pytest.raises(ValueError):
            make(n_sensors=0)

    def test_positive_period(self):
        with pytest.raises(ValueError):
            make(report_period=0.0)

    def test_jitter_below_period(self):
        with pytest.raises(ValueError):
            make(report_jitter=100.0)

    def test_nonnegative_event_rate(self):
        with pytest.raises(ValueError):
            make(event_rate=-0.1)

    def test_positive_burst_params(self):
        with pytest.raises(ValueError):
            make(event_rate=0.1, burst_spread=0.0)


class TestStatistics:
    def test_mean_rate_periodic_only(self):
        w = make(n_sensors=5, report_period=50.0)
        assert w.mean_rate == pytest.approx(0.1)

    def test_mean_rate_with_events(self):
        w = make(event_rate=0.01, burst_size=5.0)
        assert w.mean_rate == pytest.approx(10 / 100.0 + 0.05)

    def test_periodic_reports_per_sensor(self, rng):
        w = make(n_sensors=3, report_period=100.0, report_jitter=0.0)
        times, stations = w.generate(10_000.0, 3, rng)
        for sensor in range(3):
            own = times[stations == sensor]
            assert own.size == pytest.approx(100, abs=2)
            gaps = np.diff(own)
            assert np.allclose(gaps, 100.0, atol=1e-6)

    def test_bursts_add_clustered_arrivals(self, rng):
        quiet = make(event_rate=0.0)
        busy = make(event_rate=0.005, burst_size=6.0, burst_spread=4.0)
        t_quiet, _ = quiet.generate(100_000.0, 10, rng)
        t_busy, _ = busy.generate(100_000.0, 10, np.random.default_rng(1))
        assert t_busy.size > t_quiet.size

    def test_sorted_and_bounded(self, rng):
        w = make(event_rate=0.01)
        times, stations = w.generate(20_000.0, 10, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 20_000.0

    def test_burst_reporters_distinct(self, rng):
        """Each event selects distinct sensors (replace=False)."""
        w = make(n_sensors=4, event_rate=0.01, burst_size=10.0)
        times, stations = w.generate(5_000.0, 4, rng)
        assert stations.max() < 4

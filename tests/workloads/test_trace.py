"""Tests for the trace-replay workload."""

import io

import numpy as np
import pytest

from repro.workloads import TraceWorkload


def simple_trace(tile=False):
    return TraceWorkload.from_arrays([1.0, 3.0, 7.0], [0, 2, 1], tile=tile)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_arrays([1.0], [0, 1])

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_arrays([], [])

    def test_unsorted(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_arrays([3.0, 1.0], [0, 0])

    def test_negative_time(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_arrays([-1.0], [0])

    def test_negative_station(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_arrays([1.0], [-1])


class TestCsvRoundTrip:
    def test_round_trip(self):
        trace = simple_trace()
        loaded = TraceWorkload.from_csv(io.StringIO(trace.to_csv()))
        assert loaded.times == trace.times
        assert loaded.stations == trace.stations

    def test_header_optional(self):
        loaded = TraceWorkload.from_csv(io.StringIO("1.5,0\n2.5,1\n"))
        assert loaded.times == (1.5, 2.5)

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload.from_csv(io.StringIO("time,station\n1.0\n"))

    def test_file_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(simple_trace().to_csv())
        loaded = TraceWorkload.from_csv(path)
        assert loaded.times == (1.0, 3.0, 7.0)


class TestGeneration:
    def test_replay_truncates_at_horizon(self, rng):
        times, stations = simple_trace().generate(5.0, 4, rng)
        assert times.tolist() == [1.0, 3.0]

    def test_station_wrapping(self, rng):
        _, stations = simple_trace().generate(10.0, 2, rng)
        assert stations.tolist() == [0, 0, 1]

    def test_tiling_fills_horizon(self, rng):
        trace = simple_trace(tile=True)
        times, _ = trace.generate(30.0, 4, rng)
        assert times.size > 3
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 30.0

    def test_mean_rate(self):
        trace = simple_trace()
        assert trace.mean_rate == pytest.approx(3 / trace.duration)

    def test_deterministic_replay(self, rng_factory):
        trace = simple_trace(tile=True)
        a = trace.generate(25.0, 4, rng_factory(1))[0]
        b = trace.generate(25.0, 4, rng_factory(2))[0]
        assert np.array_equal(a, b)


class TestSimulatorIntegration:
    def test_drives_mac_simulator(self):
        from repro.core import ControlPolicy
        from repro.mac import WindowMACSimulator

        rng = np.random.default_rng(0)
        base = np.sort(rng.uniform(0, 5_000.0, size=150))
        trace = TraceWorkload.from_arrays(base, rng.integers(0, 8, 150), tile=True)
        sim = WindowMACSimulator(
            ControlPolicy.optimal(100.0, trace.mean_rate),
            arrival_rate=trace.mean_rate,
            transmission_slots=25,
            n_stations=8,
            deadline=100.0,
            seed=1,
            workload=trace,
        )
        result = sim.run(20_000.0, warmup_slots=2_000.0)
        assert result.arrivals > 100

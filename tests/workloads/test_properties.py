"""Property tests over every Workload generator, new and existing.

Four contracts every generator must keep, whatever its parameters:

* times sorted and inside ``[0, horizon)``, one station per time;
* station indices are integers in ``[0, n_stations)``;
* the empirical arrival count tracks ``mean_rate`` (the window-length
  heuristics and the validity sweep's rate-matching both lean on an
  honest ``mean_rate``);
* regenerating with a reconstructed same-seed ``rng`` is bit-identical
  (the cross-backend parity contract reduces to exactly this).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    AdversarialWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    HeavyTailedWorkload,
    MMPPWorkload,
    PoissonWorkload,
    SensorWorkload,
    TraceWorkload,
    VoiceWorkload,
)

HORIZON = 5_000.0
N_STATIONS = 7

# Rates chosen so shape checks stay cheap (a few hundred arrivals) while
# the rate check below can scale its own horizon to a useful sample.
rates = st.floats(min_value=0.01, max_value=0.08)


@st.composite
def poisson_workloads(draw):
    return PoissonWorkload(rate=draw(rates))


@st.composite
def mmpp_workloads(draw):
    mean = draw(rates)
    ratio = draw(st.floats(min_value=1.0, max_value=4.0))
    high = mean * ratio
    hold = draw(st.floats(min_value=20.0, max_value=100.0))
    return MMPPWorkload(
        low_rate=max(0.0, 2.0 * mean - high),
        high_rate=high,
        mean_low=hold,
        mean_high=hold,
    )


@st.composite
def voice_workloads(draw):
    return VoiceWorkload(
        n_sources=draw(st.integers(min_value=1, max_value=6)),
        packet_interval=draw(st.floats(min_value=5.0, max_value=40.0)),
        mean_talkspurt=draw(st.floats(min_value=40.0, max_value=150.0)),
        mean_silence=draw(st.floats(min_value=40.0, max_value=150.0)),
    )


@st.composite
def sensor_workloads(draw):
    # burst_size stays below n_sensors: an event can only wake distinct
    # sensors, so a larger nominal burst would deflate the empirical
    # rate below mean_rate's promise.
    n_sensors = draw(st.integers(min_value=4, max_value=12))
    return SensorWorkload(
        n_sensors=n_sensors,
        report_period=draw(st.floats(min_value=50.0, max_value=300.0)),
        report_jitter=draw(st.floats(min_value=0.0, max_value=10.0)),
        event_rate=draw(st.floats(min_value=0.0, max_value=0.002)),
        burst_size=draw(st.floats(min_value=1.0, max_value=4.0)),
    )


@st.composite
def trace_workloads(draw, tile=st.just(True)):
    # Built from strictly positive gaps: a degenerate trace whose span
    # is ~0 would tile with a ~0 period (and an unbounded mean_rate).
    gaps = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=50.0),
            min_size=2,
            max_size=40,
        )
    )
    start = draw(st.floats(min_value=0.0, max_value=20.0))
    times = [start]
    for gap in gaps[1:]:
        times.append(times[-1] + gap)
    stations = draw(
        st.lists(
            st.integers(min_value=0, max_value=99),
            min_size=len(times),
            max_size=len(times),
        )
    )
    return TraceWorkload.from_arrays(times, stations, tile=draw(tile))


@st.composite
def heavy_tailed_workloads(draw, shape_floor=1.5):
    family = draw(st.sampled_from(["pareto", "weibull"]))
    if family == "pareto":
        shape = draw(st.floats(min_value=shape_floor, max_value=3.0))
    else:
        shape = draw(st.floats(min_value=0.45, max_value=1.5))
    return HeavyTailedWorkload(rate=draw(rates), shape=shape, family=family)


@st.composite
def diurnal_workloads(draw):
    return DiurnalWorkload(
        rate=draw(rates),
        period=draw(st.floats(min_value=100.0, max_value=2_000.0)),
        amplitude=draw(st.floats(min_value=0.0, max_value=1.0)),
        phase=draw(st.floats(min_value=0.0, max_value=2.0 * math.pi)),
    )


@st.composite
def flash_crowd_workloads(draw):
    ramp = draw(st.floats(min_value=10.0, max_value=100.0))
    hold = draw(st.floats(min_value=0.0, max_value=200.0))
    slack = draw(st.floats(min_value=50.0, max_value=2_000.0))
    return FlashCrowdWorkload(
        base_rate=draw(rates),
        peak_ratio=draw(st.floats(min_value=1.0, max_value=8.0)),
        ramp=ramp,
        hold=hold,
        period=2.0 * ramp + hold + slack,
        onset=draw(st.floats(min_value=0.0, max_value=500.0)),
    )


@st.composite
def adversarial_workloads(draw):
    interval = draw(st.floats(min_value=50.0, max_value=500.0))
    return AdversarialWorkload(
        burst_size=draw(st.integers(min_value=1, max_value=10)),
        interval=interval,
        background_rate=draw(st.floats(min_value=0.0, max_value=0.05)),
        offset=draw(st.floats(min_value=0.0, max_value=40.0)),
        spread=draw(st.floats(min_value=0.5, max_value=10.0)),
    )


all_workloads = st.one_of(
    poisson_workloads(),
    mmpp_workloads(),
    voice_workloads(),
    sensor_workloads(),
    trace_workloads(tile=st.booleans()),
    heavy_tailed_workloads(),
    diurnal_workloads(),
    flash_crowd_workloads(),
    adversarial_workloads(),
)

# The rate check needs the law of large numbers on its side; exclude the
# corners where convergence over an affordable horizon is hopeless
# (infinite-variance Pareto below shape 2; untiled traces go silent past
# their duration so their long-run rate is genuinely below mean_rate).
rate_checkable_workloads = st.one_of(
    poisson_workloads(),
    mmpp_workloads(),
    voice_workloads(),
    sensor_workloads(),
    trace_workloads(),
    heavy_tailed_workloads(shape_floor=2.2),
    diurnal_workloads(),
    flash_crowd_workloads(),
    adversarial_workloads(),
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(workload=all_workloads, seed=seeds)
def test_times_sorted_and_inside_horizon(workload, seed):
    times, stations = workload.generate(
        HORIZON, N_STATIONS, np.random.default_rng(seed)
    )
    assert len(times) == len(stations)
    times = np.asarray(times, dtype=float)
    if times.size:
        assert np.all(np.diff(times) >= 0.0)
        assert times[0] >= 0.0
        assert times[-1] < HORIZON


@given(workload=all_workloads, seed=seeds)
def test_stations_are_integers_in_range(workload, seed):
    _, stations = workload.generate(
        HORIZON, N_STATIONS, np.random.default_rng(seed)
    )
    stations = np.asarray(stations)
    if stations.size:
        assert np.issubdtype(stations.dtype, np.integer)
        assert stations.min() >= 0
        assert stations.max() < N_STATIONS


@given(workload=all_workloads, seed=seeds)
def test_same_seed_reconstruction_is_bit_identical(workload, seed):
    first = workload.generate(HORIZON, N_STATIONS, np.random.default_rng(seed))
    second = workload.generate(HORIZON, N_STATIONS, np.random.default_rng(seed))
    assert np.array_equal(first[0], second[0])
    assert np.array_equal(first[1], second[1])


@settings(max_examples=30)
@given(workload=rate_checkable_workloads, seed=seeds)
def test_empirical_rate_tracks_mean_rate(workload, seed):
    rate = workload.mean_rate
    assert rate > 0.0
    # Aim for ~1000 expected arrivals so the sampling error is small
    # against the slack below; cap the horizon to keep the loop-based
    # generators affordable.
    horizon = min(500_000.0, 1_000.0 / rate)
    times, _ = workload.generate(
        horizon, N_STATIONS, np.random.default_rng(seed)
    )
    expected = rate * horizon
    # Coarse by design: burstier processes fluctuate several sigma, and
    # this check is after factor-of-two mean_rate lies, not precision.
    slack = 0.4 * expected + 6.0 * math.sqrt(expected) + 5.0
    assert abs(len(times) - expected) <= slack


def test_adversarial_rejects_zero_spread():
    with pytest.raises(ValueError, match="spread"):
        AdversarialWorkload(burst_size=4, interval=100.0, spread=0.0)


def test_heavy_tailed_rejects_undefined_mean():
    with pytest.raises(ValueError, match="shape"):
        HeavyTailedWorkload(rate=0.02, shape=1.0, family="pareto")


def test_flash_crowd_rejects_overlapping_surges():
    with pytest.raises(ValueError, match="period"):
        FlashCrowdWorkload(
            base_rate=0.02, peak_ratio=4.0, ramp=100.0, hold=50.0, period=200.0
        )

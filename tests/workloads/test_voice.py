"""Tests for the packetized-voice workload."""

import numpy as np
import pytest

from repro.workloads import VoiceWorkload


def make(n=10, interval=20.0, talk=1000.0, silence=1350.0, jitter=0.25):
    return VoiceWorkload(
        n_sources=n,
        packet_interval=interval,
        mean_talkspurt=talk,
        mean_silence=silence,
        jitter=jitter,
    )


class TestValidation:
    def test_needs_sources(self):
        with pytest.raises(ValueError):
            make(n=0)

    def test_positive_interval(self):
        with pytest.raises(ValueError):
            make(interval=0.0)

    def test_positive_durations(self):
        with pytest.raises(ValueError):
            make(talk=0.0)

    def test_jitter_bounds(self):
        with pytest.raises(ValueError):
            make(jitter=25.0)  # >= interval


class TestStatistics:
    def test_activity_factor(self):
        w = make(talk=1000.0, silence=1000.0)
        assert w.activity_factor == pytest.approx(0.5)

    def test_mean_rate_formula(self):
        w = make(n=4, interval=10.0, talk=1000.0, silence=1000.0)
        assert w.mean_rate == pytest.approx(4 * 0.5 / 10.0)

    def test_generated_rate_matches(self, rng):
        w = make(n=20)
        times, _ = w.generate(300_000.0, 20, rng)
        assert times.size == pytest.approx(w.mean_rate * 300_000, rel=0.15)

    def test_sorted_and_bounded(self, rng):
        w = make()
        times, stations = w.generate(50_000.0, 10, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.max() < 50_000.0
        assert stations.max() < 10

    def test_packets_within_talkspurt_are_periodic(self, rng):
        """A single source's packet gaps concentrate at the frame interval."""
        w = VoiceWorkload(
            n_sources=1,
            packet_interval=20.0,
            mean_talkspurt=10_000.0,
            mean_silence=1.0,
            jitter=0.0,
        )
        times, _ = w.generate(100_000.0, 1, rng)
        gaps = np.diff(times)
        assert np.median(gaps) == pytest.approx(20.0, abs=0.5)

    def test_station_mapping_round_robin(self, rng):
        w = make(n=6)
        _, stations = w.generate(100_000.0, 3, rng)
        assert set(np.unique(stations)) <= {0, 1, 2}

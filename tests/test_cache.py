"""The two-level memo: hit/miss discipline, isolation, and resilience."""

import pickle

import pytest

from repro import cache
from repro.experiments import PanelConfig, generate_panel


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    cache.clear_memory()
    yield
    cache.clear_memory()


def test_memory_layer_computes_once():
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("t", (1, 2), compute) == 42
    assert cache.get_or_compute("t", (1, 2), compute) == 42
    assert len(calls) == 1


def test_disk_layer_survives_process_memory_loss(tmp_path):
    calls = []

    def compute():
        calls.append(1)
        return {"curve": [1.0, 2.0]}

    first = cache.get_or_compute("t", ("a",), compute)
    cache.clear_memory()  # simulate a fresh process
    second = cache.get_or_compute("t", ("a",), compute)
    assert second == first
    assert len(calls) == 1
    assert list(tmp_path.glob("*.pkl"))


def test_namespaces_and_keys_do_not_collide():
    assert cache.get_or_compute("ns1", (1,), lambda: "a") == "a"
    assert cache.get_or_compute("ns2", (1,), lambda: "b") == "b"
    assert cache.get_or_compute("ns1", (2,), lambda: "c") == "c"


def test_no_cache_env_disables_memoisation(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    calls = []

    def compute():
        calls.append(1)
        return 7

    cache.get_or_compute("t", (1,), compute)
    cache.get_or_compute("t", (1,), compute)
    assert len(calls) == 2


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache.get_or_compute("t", (9,), lambda: "good")
    (entry,) = tmp_path.glob("*.pkl")
    entry.write_bytes(b"not a pickle")
    cache.clear_memory()
    assert cache.get_or_compute("t", (9,), lambda: "recomputed") == "recomputed"
    # The recomputed value was rewritten and is readable again.
    with open(entry, "rb") as handle:
        assert pickle.load(handle) == "recomputed"


def test_schema_version_partitions_the_disk_layer(monkeypatch):
    # Entries written under one schema must read as misses under another
    # — a layout change can degrade performance, never correctness.
    calls = []

    def compute():
        calls.append(1)
        return "value"

    cache.get_or_compute("t", (1,), compute)
    cache.clear_memory()
    monkeypatch.setattr(cache, "SCHEMA_VERSION", "repro-cache-v999")
    cache.get_or_compute("t", (1,), compute)
    assert len(calls) == 2


def test_cache_info_counts_entries(tmp_path):
    cache.get_or_compute("t", (1,), lambda: "a")
    cache.get_or_compute("t", (2,), lambda: list(range(100)))
    info = cache.cache_info()
    assert info["path"] == str(tmp_path)
    assert info["schema"] == cache.SCHEMA_VERSION
    assert info["entries"] == 2
    assert info["bytes"] > 0
    assert info["enabled"]


def test_clear_disk_removes_all_entries(tmp_path):
    cache.get_or_compute("t", (1,), lambda: "a")
    cache.get_or_compute("t", (2,), lambda: "b")
    assert cache.clear_disk() == 2
    assert cache.cache_info()["entries"] == 0
    assert not list(tmp_path.glob("*.pkl"))


def test_figure7_analytic_curve_served_from_memo():
    config = PanelConfig(rho_prime=0.5, message_length=25)
    deadlines = [25.0, 75.0]
    fresh = generate_panel(config, deadlines=deadlines)
    cache.clear_memory()  # force the disk layer on the second pass
    memoised = generate_panel(config, deadlines=deadlines)
    assert (
        memoised.series["controlled_analytic"].points
        == fresh.series["controlled_analytic"].points
    )

"""Cross-module integration tests: the paper's claims, end to end.

Each test ties at least two independent implementations together —
analytic model vs exact chain vs Monte Carlo vs slot-level protocol
simulation — so a bug in any one layer breaks an agreement check rather
than hiding inside a single implementation.
"""

import numpy as np
import pytest

from repro.core import ControlPolicy
from repro.crp import (
    ExactSchedulingModel,
    optimal_window_occupancy,
    windowing_process_outcomes,
    mean_scheduling_slots,
)
from repro.mac import WindowMACSimulator
from repro.queueing import (
    ImpatientMG1,
    deterministic_pmf,
    simulate_impatient_mg1,
    solve_workload_chain,
)
from repro.smdp import (
    build_protocol_smdp,
    make_window_policy,
    policy_iteration,
    pseudo_loss_fraction,
    simulate_pseudo_protocol,
)


class TestThreeWayQueueAgreement:
    """Eq. 4.7 series ≡ workload chain ≡ Monte Carlo (Figure 5b model)."""

    @pytest.mark.parametrize("lam,m,deadline", [(0.02, 25, 50.0), (0.03, 25, 60.0)])
    def test_agreement(self, lam, m, deadline, rng):
        service = deterministic_pmf(m)
        series = ImpatientMG1(lam, service.refine(4), deadline).solve()
        chain = solve_workload_chain(lam, service.refine(4), deadline)
        mc = simulate_impatient_mg1(lam, service, deadline, 300_000, rng)
        assert series.loss_probability == pytest.approx(
            chain.loss_probability, rel=0.05
        )
        assert series.loss_probability == pytest.approx(
            mc.loss_probability, rel=0.08, abs=0.002
        )


class TestSchedulingModelVsMACSim:
    """The CRP scheduling-time law predicts the MAC simulator's overhead."""

    def test_mean_scheduling_overhead(self):
        lam, m = 0.02, 25  # rho' = 0.5
        policy = ControlPolicy.uncontrolled_fcfs(lam)
        sim = WindowMACSimulator(policy, lam, m, deadline=10_000.0, seed=21)
        result = sim.run(120_000.0, warmup_slots=15_000.0)
        # channel slots not transmitting and not waiting = scheduling work
        sched_slots = result.channel.idle_slots + result.channel.collision_slots
        per_message = sched_slots / max(
            1, result.delivered_on_time + result.delivered_late
        )
        predicted = mean_scheduling_slots(optimal_window_occupancy())
        # The saturated-model prediction is only exercised while backlog
        # exists; light-traffic scanning adds idle slots, so allow slack
        # in one direction only.
        assert per_message >= 0.6 * predicted


class TestQueueingModelVsProtocolSim:
    """The §4 analytic loss matches the §2 protocol simulated at slot level."""

    @pytest.mark.parametrize("deadline", [40.0, 80.0])
    def test_controlled_loss(self, deadline):
        lam, m = 0.03, 25  # rho' = 0.75
        mu = optimal_window_occupancy()
        service = ExactSchedulingModel(m, mu).service_pmf()
        analytic = ImpatientMG1(lam, service, deadline).loss_probability()

        # Loss events are bursty, so single-run variance exceeds the
        # binomial stderr; average a few replications.
        losses = []
        for seed in (1, 2, 3):
            policy = ControlPolicy.optimal(deadline, lam)
            sim = WindowMACSimulator(policy, lam, m, deadline=deadline, seed=seed)
            losses.append(sim.run(120_000.0, warmup_slots=15_000.0).loss_fraction)
        mean_loss = float(np.mean(losses))
        # Paper-level agreement: the analysis makes the waiting-time and
        # iid-service approximations (§4.2), so demand coarse agreement.
        assert mean_loss == pytest.approx(analytic, rel=0.3, abs=0.01)


class TestSMDPVsPseudoSim:
    """Appendix-A policy evaluation versus Monte-Carlo pseudo-time runs.

    The SMDP invokes Assumption 1 (backlog content at uniform density λ),
    which *under-counts* deaths: an abandoned collision sibling is known
    to hold a message, and near the K boundary that message dies with
    probability ≈ 1 while the model charges only λ·length.  The analytic
    gain is therefore a lower bound on the simulated loss, and the gap
    shrinks as K grows relative to the transmission time (boundary
    collisions become rarer).
    """

    def test_analytic_is_lower_bound(self, rng):
        lam, K, M, w = 0.15, 10, 4, 4
        model = build_protocol_smdp(
            lam, K, M, window_lengths=lambda i: [min(w, i)], depth=8
        )
        result = policy_iteration(model)
        analytic_loss = pseudo_loss_fraction(result.gain, lam)

        policy = make_window_policy(float(w), placement="oldest", split="older")
        sim = simulate_pseudo_protocol(
            lam, float(K), M, policy, 300_000.0, rng, warmup_slots=10_000.0
        )
        assert analytic_loss <= sim.loss_fraction + 0.002

    def test_smdp_ranking_matches_simulation(self, rng_factory):
        """What the decision model *is* reliable for (and how the paper
        uses it): ordering policies.  Its absolute loss is biased low by
        Assumption 1 — the paper computed performance from the §4
        queueing model instead — but the (placement, split) ranking it
        produces matches exact sample paths."""
        lam, K, M, w = 0.15, 10, 4, 4
        model = build_protocol_smdp(
            lam, K, M, window_lengths=lambda i: [min(w, i)],
            positions="endpoints", depth=8,
        )
        from repro.smdp import evaluate_policy, WAIT

        def family_policy(placement, split):
            policy = {}
            for state in model.states():
                if state == 0:
                    policy[state] = WAIT
                    continue
                length = min(w, state)
                offset = (state - length) if placement == "oldest" else 0
                policy[state] = ("win", length, offset, split)
            return policy

        analytic = {}
        simulated = {}
        for placement, split in [("oldest", "older"), ("newest", "newer")]:
            evaluation = evaluate_policy(model, family_policy(placement, split))
            analytic[placement, split] = evaluation.gain
            policy = make_window_policy(float(w), placement=placement, split=split)
            run = simulate_pseudo_protocol(
                lam, float(K), M, policy, 250_000.0, rng_factory(42),
                warmup_slots=8_000.0,
            )
            simulated[placement, split] = run.loss_fraction
        assert (
            analytic["oldest", "older"] < analytic["newest", "newer"]
        ) == (
            simulated["oldest", "older"] < simulated["newest", "newer"]
        )


class TestJointLawVsSampleWindows:
    """The (T, F) law of crp.joint matches windows simulated directly."""

    def test_empirical_moments(self, rng):
        mu = 1.2
        law = windowing_process_outcomes(mu, depth=14)
        # simulate many single windows of unit length at occupancy mu
        slots = []
        resolved = []
        from repro.smdp.pseudo_sim import _run_windowing

        n_trials = 4000
        successes = 0
        for _ in range(n_trials):
            n = rng.poisson(mu)
            delays = sorted(rng.uniform(0.0, 1.0, size=n))
            t, lo, hi, idx = _run_windowing(list(delays), 0.0, 1.0, "older")
            if idx is not None:
                successes += 1
                slots.append(t)
                resolved.append(hi - lo)
        assert successes / n_trials == pytest.approx(
            law.success_probability(), abs=0.02
        )
        assert np.mean(slots) == pytest.approx(
            law.mean_slots_given_success(), rel=0.08
        )
        assert np.mean(resolved) == pytest.approx(
            law.mean_resolved_given_success(), rel=0.05
        )


class TestProtocolOrderingEndToEnd:
    """Figure 7's qualitative story on the slot-level simulator."""

    def test_controlled_beats_uncontrolled_at_tight_k(self):
        lam, m, K = 0.03, 25, 50.0
        results = {}
        for name, policy in [
            ("controlled", ControlPolicy.optimal(K, lam)),
            ("fcfs", ControlPolicy.uncontrolled_fcfs(lam)),
            ("lcfs", ControlPolicy.uncontrolled_lcfs(lam)),
        ]:
            sim = WindowMACSimulator(policy, lam, m, deadline=K, seed=17)
            results[name] = sim.run(100_000.0, warmup_slots=10_000.0).loss_fraction
        assert results["controlled"] < results["fcfs"]
        assert results["controlled"] < results["lcfs"]

    def test_loss_decreases_with_k_in_simulation(self):
        lam, m = 0.03, 25
        losses = []
        for K in (25.0, 75.0, 200.0):
            policy = ControlPolicy.optimal(K, lam)
            sim = WindowMACSimulator(policy, lam, m, deadline=K, seed=19)
            losses.append(sim.run(60_000.0, warmup_slots=8_000.0).loss_fraction)
        assert losses[0] > losses[1] > losses[2]

"""The supervised executor: retry, quarantine, pool recovery, resume.

The parallel tests spawn real process pools and kill real workers —
they are the repo's claim that a sweep survives what ``pool.map``
cannot.  Horizontal scale stays tiny (a handful of integer tasks) so
the whole file runs in seconds.
"""

import pytest

from repro.resilience import (
    JournalMismatchError,
    ResilienceOptions,
    RunJournal,
    SupervisedExecutor,
)

from . import _workers


def _opts(**overrides) -> ResilienceOptions:
    base = dict(max_retries=2, backoff_base=0.0)
    base.update(overrides)
    return ResilienceOptions(**base)


class TestOptions:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilienceOptions(max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            ResilienceOptions(task_timeout=0.0)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            ResilienceOptions(resume=True)

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SupervisedExecutor(
                None, _opts(checkpoint=str(tmp_path / "absent"), resume=True)
            )


class TestInline:
    def test_happy_path(self):
        outcome = SupervisedExecutor(None, _opts()).run(
            _workers.square, [0, 1, 2, 3]
        )
        assert outcome.results == [0, 1, 4, 9]
        assert outcome.executed == 4 and outcome.complete

    def test_strict_mode_reraises_first_failure(self):
        with pytest.raises(ValueError, match="poison item 2"):
            SupervisedExecutor(None).run(
                _workers.square_or_fail, [(x, 2) for x in range(4)]
            )

    def test_persistent_failure_quarantines_with_explicit_hole(self):
        outcome = SupervisedExecutor(None, _opts(max_retries=1)).run(
            _workers.square_or_fail, [(x, 2) for x in range(4)]
        )
        assert outcome.results == [0, 1, None, 9]
        assert not outcome.complete and outcome.holes() == [2]
        (record,) = outcome.quarantined
        assert record.index == 2
        assert record.attempts == 2  # initial + 1 retry
        assert "poison item 2" in record.reason
        assert "quarantined" in outcome.summary()

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        outcome = SupervisedExecutor(None, _opts()).run(
            _workers.fail_once, [(x, str(tmp_path)) for x in range(3)]
        )
        assert outcome.results == [0, 1, 4]
        assert outcome.retries == 3 and outcome.complete

    def test_zero_retries_quarantines_immediately(self, tmp_path):
        outcome = SupervisedExecutor(None, _opts(max_retries=0)).run(
            _workers.fail_once, [(x, str(tmp_path)) for x in range(3)]
        )
        assert outcome.results == [None, None, None]
        assert outcome.retries == 0 and len(outcome.quarantined) == 3


class TestJournal:
    def test_results_checkpoint_as_they_complete(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        journal = RunJournal(tmp_path / "j")
        assert journal.get("fp-2") == (True, 4)
        assert len(journal) == 3

    def test_second_invocation_replays_everything(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        outcome = SupervisedExecutor(None, opts).run(
            _workers.fail_always, [0, 1, 2], fps
        )
        # fail_always never ran: every cell came from the journal.
        assert outcome.results == [0, 1, 4]
        assert outcome.replayed == 3 and outcome.executed == 0
        assert "replayed" in outcome.summary()

    def test_partial_journal_runs_only_the_gap(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(4)]
        RunJournal(tmp_path / "j").record("fp-1", 1)
        outcome = SupervisedExecutor(None, opts).run(
            _workers.square, [0, 1, 2, 3], fps
        )
        assert outcome.results == [0, 1, 4, 9]
        assert outcome.replayed == 1 and outcome.executed == 3

    def test_keyboard_interrupt_leaves_a_valid_resumable_journal(self, tmp_path):
        # Ctrl-C mid-sweep is the canonical crash: completed cells must
        # already be on disk, and the rerun must do only the remainder.
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(5)]
        completed = []

        def interrupted(x):
            if x == 3:
                raise KeyboardInterrupt
            completed.append(x)
            return x * x

        with pytest.raises(KeyboardInterrupt):
            SupervisedExecutor(None, opts).run(interrupted, list(range(5)), fps)
        assert completed == [0, 1, 2]
        assert len(RunJournal(tmp_path / "j")) == 3

        resumed = SupervisedExecutor(
            None, _opts(checkpoint=str(tmp_path / "j"), resume=True)
        ).run(_workers.square, list(range(5)), fps)
        assert resumed.results == [0, 1, 4, 9, 16]
        assert resumed.replayed == 3 and resumed.executed == 2

    def test_verify_replay_accepts_deterministic_results(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        verify = _opts(
            checkpoint=str(tmp_path / "j"), resume=True, verify_replay=True
        )
        outcome = SupervisedExecutor(None, verify).run(
            _workers.square, [0, 1, 2], fps
        )
        assert outcome.results == [0, 1, 4]
        assert outcome.executed == 3  # verified by re-execution

    def test_verify_replay_rejects_divergence(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        SupervisedExecutor(None, opts).run(_workers.square, [2], ["fp-2"])
        RunJournal(tmp_path / "j").record("fp-2", 999)  # tamper
        verify = _opts(
            checkpoint=str(tmp_path / "j"), resume=True, verify_replay=True
        )
        with pytest.raises(JournalMismatchError):
            SupervisedExecutor(None, verify).run(_workers.square, [2], ["fp-2"])


class TestParallel:
    def test_happy_path_matches_inline(self):
        inline = SupervisedExecutor(None, _opts()).run(
            _workers.square, list(range(8))
        )
        fanned = SupervisedExecutor(3, _opts()).run(
            _workers.square, list(range(8))
        )
        assert fanned.results == inline.results

    def test_strict_parallel_reraises_worker_exception(self):
        with pytest.raises(ValueError, match="poison item 1"):
            SupervisedExecutor(2).run(
                _workers.square_or_fail, [(x, 1) for x in range(4)]
            )

    def test_worker_exception_quarantines_without_losing_neighbours(self):
        outcome = SupervisedExecutor(2, _opts(max_retries=1)).run(
            _workers.square_or_fail, [(x, 2) for x in range(6)]
        )
        assert outcome.results == [0, 1, None, 9, 16, 25]
        assert outcome.holes() == [2]

    def test_sigkilled_worker_recovers_on_a_fresh_pool(self, tmp_path):
        # kill_once SIGKILLs its worker on the first attempt at x == 3:
        # the parent sees BrokenProcessPool, respawns, and the retry
        # (which finds the sentinel) completes — nothing is lost.
        outcome = SupervisedExecutor(2, _opts()).run(
            _workers.kill_once, [(x, str(tmp_path)) for x in range(6)]
        )
        assert outcome.results == [x * x for x in range(6)]
        assert outcome.pool_restarts >= 1
        assert outcome.complete

    def test_timeout_kills_and_quarantines_the_overdue_task(self, tmp_path):
        items = [(x, 60.0 if x == 2 else 0.0) for x in range(4)]
        opts = _opts(task_timeout=0.5, max_retries=1)
        outcome = SupervisedExecutor(2, opts).run(_workers.sleepy, items)
        assert outcome.results == [0, 1, None, 9]
        assert outcome.timeouts == 2  # initial attempt + one retry
        assert outcome.holes() == [2]
        assert "timed out" in outcome.summary()

    def test_crash_mid_sweep_keeps_completed_cells_journaled(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        items = [(x, str(tmp_path / "scratch")) for x in range(6)]
        (tmp_path / "scratch").mkdir()
        fps = [f"fp-{x}" for x in range(6)]
        SupervisedExecutor(2, opts).run(_workers.kill_once, items, fps)
        journal = RunJournal(tmp_path / "j")
        assert len(journal) == 6
        assert journal.get("fp-3") == (True, 9)

"""The supervised executor: retry, quarantine, pool recovery, resume.

The parallel tests spawn real process pools and kill real workers —
they are the repo's claim that a sweep survives what ``pool.map``
cannot.  Horizontal scale stays tiny (a handful of integer tasks) so
the whole file runs in seconds.
"""

import pytest

from repro.resilience import (
    JournalMismatchError,
    ResilienceOptions,
    RunJournal,
    SupervisedExecutor,
    backoff_delay,
    value_digest,
)
from repro.resilience.supervisor import _backoff_key, _Task

from . import _workers


def _opts(**overrides) -> ResilienceOptions:
    base = dict(max_retries=2, backoff_base=0.0)
    base.update(overrides)
    return ResilienceOptions(**base)


class TestOptions:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ResilienceOptions(max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            ResilienceOptions(task_timeout=0.0)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            ResilienceOptions(resume=True)

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SupervisedExecutor(
                None, _opts(checkpoint=str(tmp_path / "absent"), resume=True)
            )

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ResilienceOptions(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            ResilienceOptions(backoff_jitter=-0.1)


class TestBackoffDelay:
    def test_no_jitter_is_pure_exponential(self):
        options = _opts(backoff_base=0.5, backoff_jitter=0.0)
        delays = [backoff_delay(options, "task-a", a) for a in (1, 2, 3)]
        assert delays == [0.5, 1.0, 2.0]

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            backoff_delay(_opts(), "task-a", 0)

    def test_jitter_is_bounded(self):
        options = _opts(backoff_base=1.0, backoff_jitter=0.25)
        for attempt in (1, 2, 3):
            base = 2.0 ** (attempt - 1)
            delay = backoff_delay(options, f"task-{attempt}", attempt)
            assert base <= delay <= base * 1.25

    def test_deterministic_under_fixed_seed(self):
        # The whole retry schedule must be a pure function of the
        # options and the task identity — a re-run reproduces it.
        options = _opts(backoff_base=0.5, backoff_jitter=0.25, backoff_seed=7)
        first = [backoff_delay(options, "fp", a) for a in (1, 2, 3)]
        second = [backoff_delay(options, "fp", a) for a in (1, 2, 3)]
        assert first == second

    def test_different_tasks_spread_out(self):
        # The anti-thundering-herd property: tasks failing at the same
        # instant (one BrokenProcessPool) back off at distinct moments.
        options = _opts(backoff_base=1.0, backoff_jitter=0.25)
        delays = {backoff_delay(options, f"task-{i}", 1) for i in range(16)}
        assert len(delays) == 16

    def test_seed_changes_the_draw(self):
        a = backoff_delay(_opts(backoff_base=1.0, backoff_seed=0), "fp", 1)
        b = backoff_delay(_opts(backoff_base=1.0, backoff_seed=1), "fp", 1)
        assert a != b

    def test_zero_base_stays_zero(self):
        options = _opts(backoff_base=0.0, backoff_jitter=0.25)
        assert backoff_delay(options, "fp", 3) == 0.0


class TestBackoffKey:
    """The ISSUE 10 seeded-jitter audit: retry jitter must be keyed by
    task *content*, never by scheduler position.

    Batched composite tasks carry ``fingerprint=None`` (their members
    own the journal keys) and a chunker-assigned ``index`` that shifts
    with ``--workers``; seeding jitter from the index would make the
    retry schedule worker-count-dependent.
    """

    def test_fingerprint_wins_when_present(self):
        task = _Task(index=3, item=None, fingerprint="abc123")
        assert _backoff_key(task) == "abc123"

    def test_batched_task_keys_on_first_member(self):
        task = _Task(
            index=3,
            item=None,
            fingerprint=None,
            subkeys=("member-a", "member-b"),
            size=2,
        )
        assert _backoff_key(task) == "member-a"

    def test_index_fallback_only_without_any_content_key(self):
        task = _Task(index=5, item=None, fingerprint=None)
        assert _backoff_key(task) == "task-5"

    def test_retry_schedule_is_worker_count_invariant(self):
        # The same batched chunk lands at index 2 under --workers 4 and
        # index 7 under --workers 2; its backoff draws must agree.
        options = _opts(backoff_base=0.5, backoff_jitter=0.25)
        few_workers = _Task(
            index=7, item=None, fingerprint=None, subkeys=("cell-fp",), size=1
        )
        many_workers = _Task(
            index=2, item=None, fingerprint=None, subkeys=("cell-fp",), size=1
        )
        for attempt in (1, 2, 3):
            assert backoff_delay(
                options, _backoff_key(few_workers), attempt
            ) == backoff_delay(options, _backoff_key(many_workers), attempt)


class TestInline:
    def test_happy_path(self):
        outcome = SupervisedExecutor(None, _opts()).run(
            _workers.square, [0, 1, 2, 3]
        )
        assert outcome.results == [0, 1, 4, 9]
        assert outcome.executed == 4 and outcome.complete

    def test_strict_mode_reraises_first_failure(self):
        with pytest.raises(ValueError, match="poison item 2"):
            SupervisedExecutor(None).run(
                _workers.square_or_fail, [(x, 2) for x in range(4)]
            )

    def test_persistent_failure_quarantines_with_explicit_hole(self):
        outcome = SupervisedExecutor(None, _opts(max_retries=1)).run(
            _workers.square_or_fail, [(x, 2) for x in range(4)]
        )
        assert outcome.results == [0, 1, None, 9]
        assert not outcome.complete and outcome.holes() == [2]
        (record,) = outcome.quarantined
        assert record.index == 2
        assert record.attempts == 2  # initial + 1 retry
        assert "poison item 2" in record.reason
        assert "quarantined" in outcome.summary()

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        outcome = SupervisedExecutor(None, _opts()).run(
            _workers.fail_once, [(x, str(tmp_path)) for x in range(3)]
        )
        assert outcome.results == [0, 1, 4]
        assert outcome.retries == 3 and outcome.complete

    def test_zero_retries_quarantines_immediately(self, tmp_path):
        outcome = SupervisedExecutor(None, _opts(max_retries=0)).run(
            _workers.fail_once, [(x, str(tmp_path)) for x in range(3)]
        )
        assert outcome.results == [None, None, None]
        assert outcome.retries == 0 and len(outcome.quarantined) == 3


class TestJournal:
    def test_results_checkpoint_as_they_complete(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        journal = RunJournal(tmp_path / "j")
        assert journal.get("fp-2") == (True, 4)
        assert len(journal) == 3

    def test_second_invocation_replays_everything(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        outcome = SupervisedExecutor(None, opts).run(
            _workers.fail_always, [0, 1, 2], fps
        )
        # fail_always never ran: every cell came from the journal.
        assert outcome.results == [0, 1, 4]
        assert outcome.replayed == 3 and outcome.executed == 0
        assert "replayed" in outcome.summary()

    def test_partial_journal_runs_only_the_gap(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(4)]
        RunJournal(tmp_path / "j").record("fp-1", 1)
        outcome = SupervisedExecutor(None, opts).run(
            _workers.square, [0, 1, 2, 3], fps
        )
        assert outcome.results == [0, 1, 4, 9]
        assert outcome.replayed == 1 and outcome.executed == 3

    def test_keyboard_interrupt_leaves_a_valid_resumable_journal(self, tmp_path):
        # Ctrl-C mid-sweep is the canonical crash: completed cells must
        # already be on disk, and the rerun must do only the remainder.
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(5)]
        completed = []

        def interrupted(x):
            if x == 3:
                raise KeyboardInterrupt
            completed.append(x)
            return x * x

        with pytest.raises(KeyboardInterrupt):
            SupervisedExecutor(None, opts).run(interrupted, list(range(5)), fps)
        assert completed == [0, 1, 2]
        assert len(RunJournal(tmp_path / "j")) == 3

        resumed = SupervisedExecutor(
            None, _opts(checkpoint=str(tmp_path / "j"), resume=True)
        ).run(_workers.square, list(range(5)), fps)
        assert resumed.results == [0, 1, 4, 9, 16]
        assert resumed.replayed == 3 and resumed.executed == 2

    def test_verify_replay_accepts_deterministic_results(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        fps = [f"fp-{x}" for x in range(3)]
        SupervisedExecutor(None, opts).run(_workers.square, [0, 1, 2], fps)
        verify = _opts(
            checkpoint=str(tmp_path / "j"), resume=True, verify_replay=True
        )
        outcome = SupervisedExecutor(None, verify).run(
            _workers.square, [0, 1, 2], fps
        )
        assert outcome.results == [0, 1, 4]
        assert outcome.executed == 3  # verified by re-execution

    def test_verify_replay_rejects_divergence(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        SupervisedExecutor(None, opts).run(_workers.square, [2], ["fp-2"])
        journal = RunJournal(tmp_path / "j")
        journal.record("fp-2", 999)  # tamper
        verify = _opts(
            checkpoint=str(tmp_path / "j"), resume=True, verify_replay=True
        )
        with pytest.raises(JournalMismatchError) as excinfo:
            SupervisedExecutor(None, verify).run(_workers.square, [2], ["fp-2"])
        # The error must name the offending record file and both value
        # digests, so a CI failure is actionable without a debugger.
        message = str(excinfo.value)
        assert str(journal.record_path("fp-2")) in message
        assert value_digest(999) in message  # what the journal held
        assert value_digest(4) in message  # what re-execution produced


class TestParallel:
    def test_happy_path_matches_inline(self):
        inline = SupervisedExecutor(None, _opts()).run(
            _workers.square, list(range(8))
        )
        fanned = SupervisedExecutor(3, _opts()).run(
            _workers.square, list(range(8))
        )
        assert fanned.results == inline.results

    def test_strict_parallel_reraises_worker_exception(self):
        with pytest.raises(ValueError, match="poison item 1"):
            SupervisedExecutor(2).run(
                _workers.square_or_fail, [(x, 1) for x in range(4)]
            )

    def test_worker_exception_quarantines_without_losing_neighbours(self):
        outcome = SupervisedExecutor(2, _opts(max_retries=1)).run(
            _workers.square_or_fail, [(x, 2) for x in range(6)]
        )
        assert outcome.results == [0, 1, None, 9, 16, 25]
        assert outcome.holes() == [2]

    def test_sigkilled_worker_recovers_on_a_fresh_pool(self, tmp_path):
        # kill_once SIGKILLs its worker on the first attempt at x == 3:
        # the parent sees BrokenProcessPool, respawns, and the retry
        # (which finds the sentinel) completes — nothing is lost.
        outcome = SupervisedExecutor(2, _opts()).run(
            _workers.kill_once, [(x, str(tmp_path)) for x in range(6)]
        )
        assert outcome.results == [x * x for x in range(6)]
        assert outcome.pool_restarts >= 1
        assert outcome.complete

    def test_timeout_kills_and_quarantines_the_overdue_task(self, tmp_path):
        items = [(x, 60.0 if x == 2 else 0.0) for x in range(4)]
        opts = _opts(task_timeout=0.5, max_retries=1)
        outcome = SupervisedExecutor(2, opts).run(_workers.sleepy, items)
        assert outcome.results == [0, 1, None, 9]
        assert outcome.timeouts == 2  # initial attempt + one retry
        assert outcome.holes() == [2]
        assert "timed out" in outcome.summary()

    def test_crash_mid_sweep_keeps_completed_cells_journaled(self, tmp_path):
        opts = _opts(checkpoint=str(tmp_path / "j"))
        items = [(x, str(tmp_path / "scratch")) for x in range(6)]
        (tmp_path / "scratch").mkdir()
        fps = [f"fp-{x}" for x in range(6)]
        SupervisedExecutor(2, opts).run(_workers.kill_once, items, fps)
        journal = RunJournal(tmp_path / "j")
        assert len(journal) == 6
        assert journal.get("fp-3") == (True, 9)

"""The run journal: atomicity discipline, schema guard, miss semantics."""

import json

import pytest

from repro.resilience import JOURNAL_SCHEMA, JournalSchemaError, RunJournal


def test_fresh_journal_writes_manifest(tmp_path):
    journal = RunJournal(tmp_path / "j")
    assert RunJournal.exists(tmp_path / "j")
    with open(tmp_path / "j" / "manifest.json", encoding="utf-8") as handle:
        assert json.load(handle)["schema"] == JOURNAL_SCHEMA
    assert len(journal) == 0


def test_record_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "j")
    journal.record("abc", {"loss": 0.25})
    assert "abc" in journal
    assert len(journal) == 1
    hit, value = journal.get("abc")
    assert hit and value == {"loss": 0.25}
    assert list(journal.fingerprints()) == ["abc"]


def test_missing_fingerprint_is_a_miss(tmp_path):
    journal = RunJournal(tmp_path / "j")
    hit, value = journal.get("nope")
    assert not hit and value is None


def test_corrupt_record_is_a_miss_not_an_error(tmp_path):
    journal = RunJournal(tmp_path / "j")
    journal.record("abc", [1, 2, 3])
    (tmp_path / "j" / "records" / "abc.pkl").write_bytes(b"torn write")
    hit, value = journal.get("abc")
    assert not hit and value is None
    # Re-recording heals the entry.
    journal.record("abc", [1, 2, 3])
    assert journal.get("abc") == (True, [1, 2, 3])


def test_record_is_idempotent(tmp_path):
    journal = RunJournal(tmp_path / "j")
    journal.record("abc", 1)
    journal.record("abc", 1)
    assert len(journal) == 1


def test_reopen_sees_previous_records(tmp_path):
    RunJournal(tmp_path / "j").record("abc", 42)
    assert RunJournal(tmp_path / "j").get("abc") == (True, 42)


def test_foreign_schema_is_a_hard_error(tmp_path):
    RunJournal(tmp_path / "j")
    manifest = tmp_path / "j" / "manifest.json"
    manifest.write_text(json.dumps({"schema": "repro-journal-v0"}))
    with pytest.raises(JournalSchemaError):
        RunJournal(tmp_path / "j")


def test_schema_error_names_path_and_both_schemas(tmp_path):
    # The message must say which file is wrong, what it declares, and
    # what this package writes — enough to act on without a debugger.
    RunJournal(tmp_path / "j")
    manifest = tmp_path / "j" / "manifest.json"
    manifest.write_text(json.dumps({"schema": "repro-journal-v0"}))
    with pytest.raises(JournalSchemaError) as excinfo:
        RunJournal(tmp_path / "j")
    message = str(excinfo.value)
    assert str(manifest) in message
    assert "repro-journal-v0" in message
    assert JOURNAL_SCHEMA in message


def test_record_path_points_at_the_record_file(tmp_path):
    journal = RunJournal(tmp_path / "j")
    journal.record("abc", 1)
    path = journal.record_path("abc")
    assert path.exists()
    assert path == tmp_path / "j" / "records" / "abc.pkl"
    # record_path answers for misses too (that's the point: error
    # messages name where the record *would* live).
    assert not journal.record_path("absent").exists()


def test_value_digest_is_stable_and_discriminating(tmp_path):
    from repro.resilience import value_digest

    assert value_digest({"loss": 0.25}) == value_digest({"loss": 0.25})
    assert value_digest({"loss": 0.25}) != value_digest({"loss": 0.35})
    assert len(value_digest(1, length=12)) == 12


def test_unreadable_manifest_is_a_hard_error(tmp_path):
    RunJournal(tmp_path / "j")
    (tmp_path / "j" / "manifest.json").write_text("{not json")
    with pytest.raises(JournalSchemaError):
        RunJournal(tmp_path / "j")


def test_clear_removes_records_keeps_manifest(tmp_path):
    journal = RunJournal(tmp_path / "j")
    journal.record("a", 1)
    journal.record("b", 2)
    assert journal.clear() == 2
    assert len(journal) == 0
    assert RunJournal.exists(tmp_path / "j")


def test_no_temp_file_debris_after_records(tmp_path):
    journal = RunJournal(tmp_path / "j")
    for i in range(5):
        journal.record(f"fp{i}", i)
    debris = list((tmp_path / "j" / "records").glob("*.tmp"))
    assert debris == []

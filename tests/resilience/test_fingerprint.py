"""Content-addressed fingerprints: stability, sensitivity, loud failure."""

import pytest

from repro.core import ControlPolicy
from repro.experiments import MACRunSpec, spec_fingerprint
from repro.faults import FaultModel
from repro.resilience import FingerprintError, fingerprint
from repro.workloads.arrivals import MMPPWorkload


def _spec(**overrides) -> MACRunSpec:
    base = dict(
        policy=ControlPolicy.optimal(75.0, 0.02),
        arrival_rate=0.02,
        transmission_slots=25,
        horizon=4_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=75.0,
        seed=7,
    )
    base.update(overrides)
    return MACRunSpec(**base)


class TestPrimitives:
    def test_equal_values_fingerprint_identically(self):
        assert fingerprint((1, "a", 2.5)) == fingerprint((1, "a", 2.5))

    def test_type_distinguishes(self):
        # 1 == 1.0 == True in Python; the journal must not conflate them.
        digests = {fingerprint(1), fingerprint(1.0), fingerprint(True)}
        assert len(digests) == 3

    def test_container_kind_distinguishes(self):
        assert fingerprint([1, 2]) != fingerprint((1, 2))

    def test_dict_insertion_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_none_and_empty_are_distinct(self):
        assert fingerprint(None) != fingerprint("")
        assert fingerprint(()) != fingerprint(None)


class TestSpecs:
    def test_separately_constructed_equal_specs_match(self):
        # The resume guarantee: a re-invocation builds its grid from
        # scratch and must still hit every journal record.
        assert spec_fingerprint(_spec()) == spec_fingerprint(_spec())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": 8},
            {"horizon": 5_000.0},
            {"n_stations": 26},
            {"deadline": 80.0},
            {"fault_model": FaultModel.feedback_noise(0.01)},
            {
                "workload": MMPPWorkload(
                    low_rate=0.01, high_rate=0.05, mean_low=100.0, mean_high=100.0
                )
            },
        ],
    )
    def test_any_field_change_changes_the_fingerprint(self, overrides):
        assert spec_fingerprint(_spec(**overrides)) != spec_fingerprint(_spec())

    def test_policy_strategy_objects_are_stable(self):
        # ControlPolicy carries strategy objects whose default repr holds
        # a memory address — the canonicaliser must see through them.
        a = ControlPolicy.optimal(75.0, 0.02)
        b = ControlPolicy.optimal(75.0, 0.02)
        assert fingerprint(a) == fingerprint(b)


class TestRejection:
    def test_identity_repr_is_rejected_loudly(self):
        class Opaque:
            __slots__ = ()  # no __dict__, default identity repr

        with pytest.raises(FingerprintError):
            fingerprint(Opaque())

"""Invariant guards: gating, failure class, and clean simulator runs."""

import pytest

from repro.core import ControlPolicy
from repro.experiments import MACRunSpec
from repro.experiments.sweep import run_spec
from repro.resilience import InvariantViolation, invariants_enabled, require
from repro.resilience.invariants import INVARIANTS_ENV


class TestGating:
    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert invariants_enabled()

    @pytest.mark.parametrize("value", ["", "0", "no", "off"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(INVARIANTS_ENV, value)
        assert not invariants_enabled()

    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        assert not invariants_enabled()


class TestRequire:
    def test_violation_is_runtime_error_not_assertion(self):
        # RuntimeError so `python -O` cannot strip the check and the
        # supervisor treats a violation like any other task failure.
        with pytest.raises(InvariantViolation) as excinfo:
            require(False, "clock stalled")
        assert isinstance(excinfo.value, RuntimeError)
        assert not isinstance(excinfo.value, AssertionError)
        assert "clock stalled" in str(excinfo.value)

    def test_true_condition_is_free(self):
        require(True, "never raised")


def _spec(fast: bool) -> MACRunSpec:
    m = 25
    lam = 0.5 / m
    return MACRunSpec(
        policy=ControlPolicy.optimal(3.0 * m, lam),
        arrival_rate=lam,
        transmission_slots=m,
        horizon=4_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=3.0 * m,
        seed=17,
        fast=fast,
    )


class TestSimulatorUnderGuards:
    @pytest.mark.parametrize("fast", [True, False])
    def test_guarded_run_is_clean_and_bit_identical(self, monkeypatch, fast):
        # The guards must be pure observation: enabling them neither
        # raises on a healthy run nor perturbs a single statistic.
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        unguarded = run_spec(_spec(fast))
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        guarded = run_spec(_spec(fast))
        assert guarded == unguarded

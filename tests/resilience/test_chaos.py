"""Chaos acceptance tests: the PR's two headline guarantees.

1. A sweep whose worker is SIGKILLed mid-run, then resumed from its
   journal by a fresh invocation, produces results **bit-identical** to
   an uninterrupted ``workers=1`` run.
2. A sweep containing a poison cell completes as a partial grid with
   the hole explicitly marked — never silently truncated.

CI runs this file as its chaos-smoke step; set
``REPRO_CHAOS_JOURNAL_DIR`` to persist the journal outside pytest's
tmp dir so a failing run can upload it as an artifact.
"""

import os
import shutil
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core import ControlPolicy
from repro.experiments import (
    MACRunSpec,
    ResilienceOptions,
    SequentialOptions,
    SweepExecutor,
    derive_seeds,
    run_sequential,
    spec_fingerprint,
)
from repro.experiments import sweep as sweep_mod
from repro.faults import FeedbackFaultModel
from repro.resilience import SupervisedExecutor

from . import _workers

# SIGKILL + resume round-trips take tens of seconds; the default CI job
# skips them (-m "not slow and not chaos") and the chaos-smoke job runs
# them with invariants armed.
pytestmark = pytest.mark.chaos

M = 25
LAM = 0.5 / M


def _grid(feedback_faults=None):
    return [
        MACRunSpec(
            policy=ControlPolicy.optimal(3.0 * M, LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            horizon=2_500.0,
            warmup=300.0,
            n_stations=25,
            deadline=3.0 * M,
            seed=seed,
            feedback_faults=feedback_faults,
        )
        for seed in derive_seeds(base_seed=99, n=4)
    ]


def _journal_dir(tmp_path: Path) -> Path:
    # CI points this at the workspace so a failing run uploads the
    # journal as an artifact; locally it lives in pytest's tmp dir.
    root = Path(os.environ.get("REPRO_CHAOS_JOURNAL_DIR", tmp_path))
    journal = root / "chaos-journal"
    if journal.exists():
        shutil.rmtree(journal)
    return journal


def test_killed_and_resumed_sweep_is_bit_identical(tmp_path):
    baseline = SweepExecutor(None).run_specs(_grid())

    # Interrupted run: one worker SIGKILLed mid-sweep, supervision
    # recovers on a respawned pool, every cell checkpoints.
    journal = _journal_dir(tmp_path)
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    specs = _grid()
    chaos = SupervisedExecutor(
        2, ResilienceOptions(checkpoint=str(journal), backoff_base=0.0)
    ).run(
        _workers.run_spec_after_kill,
        [(spec, str(scratch)) for spec in specs],
        [spec_fingerprint(spec) for spec in specs],
    )
    assert chaos.pool_restarts >= 1, "the kill must actually break a pool"
    assert chaos.complete
    assert chaos.results == baseline

    # Fresh invocation with the same journal: pure replay, still
    # bit-identical to the uninterrupted sequential run.
    resumer = SweepExecutor(
        2, ResilienceOptions(checkpoint=str(journal), resume=True)
    )
    resumed = resumer.run_specs(_grid())
    assert resumed == baseline
    assert resumer.last_outcome.replayed == len(baseline)
    assert resumer.last_outcome.executed == 0


def test_killed_and_resumed_faulted_sweep_is_bit_identical(tmp_path):
    """The kill-and-resume guarantee extends to feedback-faulted cells:
    faulted runs ride the faulted fast kernel, and their journaled
    results replay bit-identically too."""
    faults = FeedbackFaultModel.noise(0.02, recovery="gated-rejoin")
    baseline = SweepExecutor(None).run_specs(_grid(faults))
    assert any(r.lost_to_faults > 0 or r.faults.resyncs > 0 for r in baseline)

    journal = _journal_dir(tmp_path)
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    specs = _grid(faults)
    chaos = SupervisedExecutor(
        2, ResilienceOptions(checkpoint=str(journal), backoff_base=0.0)
    ).run(
        _workers.run_spec_after_kill,
        [(spec, str(scratch)) for spec in specs],
        [spec_fingerprint(spec) for spec in specs],
    )
    assert chaos.pool_restarts >= 1, "the kill must actually break a pool"
    assert chaos.complete
    assert chaos.results == baseline

    resumer = SweepExecutor(
        2, ResilienceOptions(checkpoint=str(journal), resume=True)
    )
    resumed = resumer.run_specs(_grid(faults))
    assert resumed == baseline
    assert resumer.last_outcome.replayed == len(baseline)
    assert resumer.last_outcome.executed == 0


def test_poison_cell_completes_as_partial_grid_with_marked_hole(monkeypatch):
    specs = _grid()
    poison = spec_fingerprint(specs[1])
    real = sweep_mod.run_spec

    def poisoned(spec):
        if spec_fingerprint(spec) == poison:
            raise RuntimeError("injected poison cell")
        return real(spec)

    monkeypatch.setattr(sweep_mod, "run_spec", poisoned)
    # batch=False pins the one-task-per-cell dispatch this test injects
    # into; the batched-task quarantine path has its own coverage in
    # tests/experiments/test_sweep_batch.py.
    executor = SweepExecutor(
        None,
        ResilienceOptions(max_retries=1, backoff_base=0.0),
        batch=False,
    )
    results = executor.run_specs(specs)

    assert results[1] is None, "the hole must stay visible at its index"
    assert all(results[i] is not None for i in (0, 2, 3))
    outcome = executor.last_outcome
    assert outcome.holes() == [1]
    (record,) = outcome.quarantined
    assert record.attempts == 2
    assert "injected poison cell" in record.reason


def test_strict_sweep_still_fails_fast(monkeypatch):
    # Without resilience options the legacy contract holds: the first
    # failure propagates instead of becoming a hole — whichever dispatch
    # (per-cell or batched) the executor picked.
    specs = _grid()[:2]

    def boom(*_args):
        raise RuntimeError("boom")

    monkeypatch.setattr(sweep_mod, "run_spec", boom)
    monkeypatch.setattr(sweep_mod, "run_batch", boom)
    with pytest.raises(RuntimeError, match="boom"):
        SweepExecutor(None).run_specs(specs)
    with pytest.raises(RuntimeError, match="boom"):
        SweepExecutor(None, batch=False).run_specs(specs)


# Shared between the parent test and the SIGKILLed child process so the
# arm templates (and hence every journal fingerprint) are literally the
# same code.  A tiny ci_target drives both arms to the seed budget, so
# the run is guaranteed to span multiple waves for the kill to land in.
_SEQ_SETUP = textwrap.dedent(
    """
    from repro.core import ControlPolicy
    from repro.experiments import MACRunSpec, SequentialOptions

    M = 25
    LAM = 0.5 / M

    def _seq_arms():
        def template(policy):
            return MACRunSpec(
                policy=policy,
                arrival_rate=LAM,
                transmission_slots=M,
                horizon=2_500.0,
                warmup=300.0,
                n_stations=25,
                deadline=3.0 * M,
                seed=0,
            )
        return [
            ("controlled", template(ControlPolicy.optimal(3.0 * M, LAM))),
            ("fcfs", template(ControlPolicy.uncontrolled_fcfs(LAM))),
        ]

    SEQ_OPTIONS = SequentialOptions(
        ci_target=1e-9,
        wave_size=2,
        min_replications=4,
        max_replications=8,
    )
    """
)

_SEQ_CHILD = _SEQ_SETUP + textwrap.dedent(
    """
    import os
    import signal
    import sys

    from repro.experiments import ResilienceOptions, SweepExecutor
    from repro.experiments.sweep import run_sequential

    class KillMidWave(SweepExecutor):
        # Wave 1 completes and journals; halfway through wave 2's lanes
        # the process dies the hard way — after some of the wave's lane
        # results hit the journal but before its stopping decision does.
        calls = 0

        def run_specs(self, specs):
            KillMidWave.calls += 1
            if KillMidWave.calls == 2:
                SweepExecutor.run_specs(self, specs[: len(specs) // 2])
                os.kill(os.getpid(), signal.SIGKILL)
            return SweepExecutor.run_specs(self, specs)

    executor = KillMidWave(
        None, ResilienceOptions(checkpoint=sys.argv[1], backoff_base=0.0)
    )
    run_sequential(_seq_arms(), SEQ_OPTIONS, executor)
    raise SystemExit("unreachable: the kill must fire during wave 2")
    """
)


def test_sequential_killed_mid_wave_resumes_to_identical_report(tmp_path):
    """ISSUE 10 chaos acceptance: a sequential run SIGKILLed mid-wave,
    resumed from its journal, reaches the *same* stopping decisions and
    final per-arm report as an uninterrupted run — bit for bit."""
    namespace = {}
    exec(compile(_SEQ_SETUP, "<seq-setup>", "exec"), namespace)
    arms, options = namespace["_seq_arms"](), namespace["SEQ_OPTIONS"]

    baseline = run_sequential(arms, options, SweepExecutor(None))
    assert all(e.waves > 1 for e in baseline), "need multiple looks to kill"

    journal = _journal_dir(tmp_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    child = subprocess.run(
        [sys.executable, "-c", _SEQ_CHILD, str(journal)],
        cwd=str(Path(__file__).resolve().parents[2]),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert child.returncode == -signal.SIGKILL, (
        f"child must die by SIGKILL mid-wave, got rc={child.returncode}: "
        f"{child.stderr[-500:]}"
    )
    assert journal.exists(), "the interrupted run must leave its journal"

    # Fresh invocation, same journal: journaled lanes replay (verified
    # against recomputation), the missing half of wave 2 executes, and
    # every wave decision re-derives identically.  last_outcome only
    # covers the final wave, so per-wave outcomes are collected here.
    wave_outcomes = []

    class Recording(SweepExecutor):
        def run_specs(self, specs):
            results = SweepExecutor.run_specs(self, specs)
            wave_outcomes.append(self.last_outcome)
            return results

    resumer = Recording(
        None,
        ResilienceOptions(
            checkpoint=str(journal), resume=True, verify_replay=True
        ),
        batch=False,  # verify-replay audits recompute per cell
    )
    resumed = run_sequential(arms, options, resumer)
    assert resumed == baseline
    assert [e.decisions for e in resumed] == [e.decisions for e in baseline]
    # verify_replay recomputes journal hits instead of reusing them, so
    # the audit pass shows executed lanes only; the mismatch-free run IS
    # its assertion.  A second, plain resume then proves the journal is
    # complete: every lane replays, nothing executes.
    wave_outcomes.clear()
    replayer = Recording(
        None, ResilienceOptions(checkpoint=str(journal), resume=True)
    )
    replayed_run = run_sequential(arms, options, replayer)
    assert replayed_run == baseline
    assert sum(o.executed for o in wave_outcomes) == 0
    assert sum(o.replayed for o in wave_outcomes) == sum(
        e.lanes for e in baseline
    )

"""Module-level worker functions for the supervisor tests.

Process pools pickle callables by qualified name, so everything a
parallel test submits must live at module scope — lambdas and closures
only work on the inline path.  Cross-process state (did this task
already fail once?) goes through sentinel files in a scratch directory
carried inside each item, because a retried task may land on a fresh
worker process that shares nothing with the first attempt but the
filesystem.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path


def square(x: int) -> int:
    return x * x


def fail_always(x: int) -> int:
    raise ValueError(f"poison item {x}")


def square_or_fail(arg):
    """``(x, poison)``: raise for the poison value, square the rest."""
    x, poison = arg
    if x == poison:
        raise ValueError(f"poison item {x}")
    return x * x


def fail_once(arg):
    """``(x, scratch)``: fail the first attempt at each x, then succeed."""
    x, scratch = arg
    marker = Path(scratch) / f"attempted-{x}"
    if not marker.exists():
        marker.touch()
        raise ValueError(f"transient failure for {x}")
    return x * x


def kill_once(arg):
    """``(x, scratch)``: SIGKILL the worker on the first attempt at x == 3.

    Simulates an OOM kill mid-task: the parent sees
    ``BrokenProcessPool``, and the retry (on a respawned pool) finds the
    sentinel and completes normally.
    """
    x, scratch = arg
    marker = Path(scratch) / f"killed-{x}"
    if x == 3 and not marker.exists():
        marker.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def sleepy(arg):
    """``(x, seconds)``: sleep, then square — the timeout-test workload."""
    x, seconds = arg
    if seconds:
        time.sleep(seconds)
    return x * x


def run_spec_after_kill(arg):
    """``(spec, scratch)``: SIGKILL the first worker to arrive, once.

    The chaos-test workload: one worker dies mid-sweep (before touching
    its cell, so no partial state), every later attempt runs the spec
    normally.  Which cell the kill lands on is scheduling-dependent —
    irrelevant, because every spec carries its own seed and the retry is
    bit-identical.
    """
    from repro.experiments.sweep import run_spec

    spec, scratch = arg
    marker = Path(scratch) / "killed"
    if not marker.exists():
        marker.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return run_spec(spec)

"""Tests for the joint (duration, resolved, success-locus) law."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crp import mean_scheduling_slots, windowing_process_outcomes
from repro.crp.joint import _resolve


class TestResolveRecursion:
    def test_requires_collision(self):
        with pytest.raises(ValueError):
            _resolve(1, 5)

    def test_depth_zero_forced_terminal(self):
        outcomes = _resolve(3, 0)
        assert outcomes == (((0, 1.0, 1.0), 1.0),)

    def test_probabilities_sum_to_one(self):
        for n in (2, 3, 5, 9):
            total = sum(p for _, p in _resolve(n, 12))
            assert total == pytest.approx(1.0, abs=1e-12)

    def test_n2_depth1_cases(self):
        """n = 2, one split allowed: older half has j ∈ {0, 1, 2}.

        j=1 (p=1/2): success, (t=0, f=1/2, s=1/2); j=0 or j=2 (p=1/4
        each): descend and hit forced termination."""
        outcomes = dict(_resolve(2, 1))
        assert outcomes[(0, 0.5, 0.5)] == pytest.approx(0.5)
        # j=0: idle slot then forced terminal on newer half: f = 1/2+1/2 = 1
        assert outcomes[(1, 1.0, 0.5)] == pytest.approx(0.25)
        # j=2: collision slot then forced terminal on older half: f = 1/2
        assert outcomes[(1, 0.5, 0.5)] == pytest.approx(0.25)

    def test_slots_bounded_by_depth(self):
        for (t, _f, _s), _p in _resolve(6, 9):
            assert t <= 9

    def test_fractions_dyadic_and_in_range(self):
        for (t, f, s), _p in _resolve(5, 10):
            assert 0.0 < f <= 1.0
            assert 0.0 < s <= f + 1e-15
            # dyadic with denominator 2^10
            assert (f * 2**10) == pytest.approx(round(f * 2**10), abs=1e-9)


class TestWindowProcessOutcomes:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            windowing_process_outcomes(-1.0)
        with pytest.raises(ValueError):
            windowing_process_outcomes(1.0, depth=0)

    def test_empty_plus_success_accounts_for_all_mass(self):
        law = windowing_process_outcomes(1.2, depth=12)
        assert law.truncated_mass() < 1e-9

    def test_mean_slots_consistent_with_scheduling_module(self):
        """E[T] per windowing process relates to the per-message E[T]:
        E[T_sched] = E[#empty windows]·1 + E[T | success-window]."""
        mu = 1.2
        law = windowing_process_outcomes(mu, depth=14)
        p_empty = law.empty_probability
        per_process = law.mean_slots_given_success()
        empties_per_message = p_empty / (1.0 - p_empty)
        assert empties_per_message + per_process == pytest.approx(
            mean_scheduling_slots(mu), rel=1e-4
        )

    def test_single_arrival_outcome_present(self):
        import math

        law = windowing_process_outcomes(0.8)
        outcomes = dict(law.success_outcomes)
        # exactly-one-arrival: no slots, everything resolved by the window
        assert outcomes[(0, 1.0, 1.0)] == pytest.approx(0.8 * math.exp(-0.8), rel=1e-9)

    def test_resolved_fraction_decreases_with_occupancy(self):
        """Busier windows resolve a smaller fraction per success."""
        low = windowing_process_outcomes(0.5).mean_resolved_given_success()
        high = windowing_process_outcomes(3.0).mean_resolved_given_success()
        assert high < low

    def test_zero_occupancy_all_empty(self):
        law = windowing_process_outcomes(0.0)
        assert law.empty_probability == pytest.approx(1.0)
        assert law.success_probability() == pytest.approx(0.0, abs=1e-12)

    @given(mu=st.floats(0.1, 4.0))
    def test_mass_conservation_property(self, mu):
        law = windowing_process_outcomes(mu, depth=10)
        total = law.empty_probability + law.success_probability()
        assert total == pytest.approx(1.0, abs=1e-6)

"""Tests for the scheduling-time distribution and service models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crp import (
    ExactSchedulingModel,
    GeometricSchedulingModel,
    mean_scheduling_slots,
    scheduling_time_pmf,
)
from repro.crp.scheduling_time import (
    poisson_window_probabilities,
    transmission_only_service,
)


class TestPoissonWindow:
    def test_sums_to_nearly_one(self):
        p = poisson_window_probabilities(2.0, 40)
        assert p.sum() == pytest.approx(1.0, abs=1e-10)

    def test_zero_occupancy(self):
        p = poisson_window_probabilities(0.0, 5)
        assert p[0] == 1.0
        assert p[1:].sum() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            poisson_window_probabilities(-1.0, 5)


class TestMeanSchedulingSlots:
    def test_positive_occupancy_required(self):
        with pytest.raises(ValueError):
            mean_scheduling_slots(0.0)

    def test_small_occupancy_dominated_by_idle_windows(self):
        """As μ → 0, E[T] ≈ P0/(1−P0) ≈ 1/μ (idle windows per message)."""
        mu = 0.01
        assert mean_scheduling_slots(mu) == pytest.approx(1.0 / mu, rel=0.02)

    def test_large_occupancy_grows(self):
        assert mean_scheduling_slots(8.0) > mean_scheduling_slots(2.0)

    def test_unimodal_around_optimum(self):
        """E[T](μ) decreases then increases — the heuristic's premise."""
        grid = np.linspace(0.2, 6.0, 40)
        values = [mean_scheduling_slots(m) for m in grid]
        arg = int(np.argmin(values))
        assert 0 < arg < len(grid) - 1
        assert all(b <= a + 1e-12 for a, b in zip(values[:arg], values[1 : arg + 1]))
        assert all(b >= a - 1e-12 for a, b in zip(values[arg:], values[arg + 1 :]))


class TestSchedulingPmf:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scheduling_time_pmf(0.0)
        with pytest.raises(ValueError):
            scheduling_time_pmf(1.0, t_max=0)

    def test_mean_matches_closed_form(self):
        """The pmf and the closed-form mean are independent computations."""
        for mu in (0.3, 1.0886, 2.5):
            pmf = scheduling_time_pmf(mu, t_max=600)
            assert pmf.truncation_deficit < 1e-6
            assert pmf.mean() == pytest.approx(mean_scheduling_slots(mu), rel=1e-4)

    def test_zero_scheduling_probability(self):
        """P(T = 0) = P(no empty window AND one arrival) = μ·e^{−μ}:
        the geometric zero term (1 − p₀) cancels the conditional's
        denominator."""
        mu = 1.0
        pmf = scheduling_time_pmf(mu)
        assert pmf.p[0] == pytest.approx(mu * np.exp(-mu), rel=1e-9)

    def test_truncation_reported(self):
        pmf = scheduling_time_pmf(1.0, t_max=3)
        assert pmf.truncation_deficit > 0.0


class TestServiceModels:
    def test_exact_service_mean(self):
        model = ExactSchedulingModel(transmission_slots=25, window_occupancy=1.0886)
        service = model.service_pmf()
        assert service.mean() == pytest.approx(25 + model.mean_scheduling(), rel=1e-3)
        assert service.p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_exact_service_minimum_is_transmission(self):
        model = ExactSchedulingModel(transmission_slots=10, window_occupancy=1.0)
        service = model.service_pmf()
        assert np.all(service.p[:10] == 0.0)
        assert service.p[10] > 0.0

    def test_geometric_matches_exact_mean(self):
        exact = ExactSchedulingModel(25, 1.0886)
        geo = GeometricSchedulingModel(25, 1.0886)
        assert geo.service_pmf().mean() == pytest.approx(
            exact.service_pmf().mean(), rel=1e-3
        )

    def test_geometric_has_heavier_variance_than_deterministic_component(self):
        geo = GeometricSchedulingModel(25, 1.0886).service_pmf()
        assert geo.variance() > 0.0

    def test_transmission_only_service(self):
        service = transmission_only_service(25)
        assert service.mean() == 25.0
        assert service.variance() == pytest.approx(0.0, abs=1e-12)

    @given(mu=st.floats(0.2, 4.0))
    def test_service_proper_distribution_property(self, mu):
        service = ExactSchedulingModel(5, mu, t_max=500).service_pmf()
        assert service.p.sum() == pytest.approx(1.0, abs=1e-9)
        assert service.mean() >= 5.0

"""Tests for the protocol-capacity analysis."""

import pytest

from repro.core import ControlPolicy
from repro.crp import (
    max_stable_throughput,
    mean_scheduling_slots,
    optimal_window_occupancy,
    utilization_bound,
)
from repro.mac import WindowMACSimulator


class TestFormulas:
    def test_invalid_transmission(self):
        with pytest.raises(ValueError):
            max_stable_throughput(0.0)

    def test_report_fields_consistent(self):
        report = max_stable_throughput(25)
        assert report.max_throughput == pytest.approx(
            1.0 / (report.scheduling_overhead + 25)
        )
        assert report.utilization_bound == pytest.approx(25 * report.max_throughput)

    def test_overhead_is_mu_star_value(self):
        report = max_stable_throughput(25)
        assert report.scheduling_overhead == pytest.approx(
            mean_scheduling_slots(optimal_window_occupancy())
        )

    def test_utilization_grows_with_message_length(self):
        bounds = [utilization_bound(m) for m in (1, 5, 25, 100)]
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
        assert bounds[-1] > 0.98  # overhead amortises away

    def test_custom_occupancy_weaker(self):
        """A non-optimal occupancy cannot beat μ*'s capacity."""
        best = max_stable_throughput(25).max_throughput
        worse = max_stable_throughput(25, occupancy=4.0).max_throughput
        assert worse < best


class TestAgainstSimulation:
    def test_below_capacity_stable_above_sheds(self):
        """Simulate the uncontrolled protocol just below and well above
        the capacity bound: below, (almost) everything is delivered;
        above, a large backlog accumulates."""
        m = 25
        lam_star = max_stable_throughput(m).max_throughput

        def run(lam):
            policy = ControlPolicy.uncontrolled_fcfs(lam)
            sim = WindowMACSimulator(
                policy, lam, m, deadline=1e9, seed=23
            )
            return sim.run(60_000.0, warmup_slots=6_000.0)

        below = run(0.9 * lam_star)
        above = run(1.3 * lam_star)
        assert below.unresolved < 30
        assert above.unresolved > 5 * max(1, below.unresolved)

"""Tests for the collision-resolution recursion."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crp import (
    binomial_split_probabilities,
    expected_resolution_steps,
    resolution_time_pmf,
)
from repro.crp.splitting import resolution_success_probability


class TestBinomialSplit:
    def test_sums_to_one(self):
        for n in range(0, 12):
            assert sum(binomial_split_probabilities(n)) == pytest.approx(1.0)

    def test_symmetric(self):
        q = binomial_split_probabilities(6)
        assert q == tuple(reversed(q))

    def test_known_values(self):
        assert binomial_split_probabilities(2) == (0.25, 0.5, 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            binomial_split_probabilities(-1)


class TestExpectedSteps:
    def test_requires_collision(self):
        with pytest.raises(ValueError):
            expected_resolution_steps(1)

    def test_two_arrivals_exact(self):
        """D(2)·(1 − 1/4 − 1/4) = 1/2  →  D(2) = 1."""
        assert expected_resolution_steps(2) == pytest.approx(1.0)

    def test_three_arrivals_exact(self):
        """Hand computation: D(3) = (5/8 + 3/8·D(2)) / (1 − 1/8 − 1/8) = 4/3."""
        assert expected_resolution_steps(3) == pytest.approx(4.0 / 3.0)

    def test_monotone_increasing_in_n(self):
        values = [expected_resolution_steps(n) for n in range(2, 40)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_logarithmic_growth(self):
        """Splitting isolates one of n in roughly log2(n) levels."""
        assert expected_resolution_steps(64) < 4 * math.log2(64)


class TestResolutionPmf:
    def test_degenerate_rows(self):
        pmf = resolution_time_pmf(1, 10)
        assert pmf[0, 0] == 1.0
        assert pmf[1, 0] == 1.0

    def test_negative_args_rejected(self):
        with pytest.raises(ValueError):
            resolution_time_pmf(-1, 5)
        with pytest.raises(ValueError):
            resolution_time_pmf(5, -1)

    def test_n2_geometric_structure(self):
        """For n = 2: success at each level with prob 1/2 (older half has
        exactly one) and stay otherwise → P(T = t) = (1/2)^{t+1}."""
        pmf = resolution_time_pmf(2, 20)
        for t in range(10):
            assert pmf[2, t] == pytest.approx(0.5 ** (t + 1))

    def test_rows_sum_to_at_most_one(self):
        pmf = resolution_time_pmf(10, 50)
        sums = pmf.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-12)

    def test_rows_approach_one_with_long_horizon(self):
        pmf = resolution_time_pmf(8, 300)
        assert pmf[8].sum() == pytest.approx(1.0, abs=1e-9)

    def test_mean_matches_recursion(self):
        """Σ t·P_n(t) must reproduce D(n) (two independent computations)."""
        t_max = 800
        pmf = resolution_time_pmf(12, t_max)
        for n in (2, 3, 5, 8, 12):
            mean = float(np.dot(np.arange(t_max + 1), pmf[n]))
            assert mean == pytest.approx(expected_resolution_steps(n), rel=1e-6)

    def test_success_probability_helper(self):
        assert resolution_success_probability(1, 5) == 1.0
        assert resolution_success_probability(2, 200) == pytest.approx(1.0, abs=1e-9)
        assert resolution_success_probability(2, 0) == pytest.approx(0.5)

    @given(n=st.integers(2, 20))
    def test_pmf_nonnegative_property(self, n):
        pmf = resolution_time_pmf(n, 60)
        assert np.all(pmf >= 0.0)

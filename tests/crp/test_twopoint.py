"""Tests for the [Kurose 83] two-endpoint scheduling-time fit."""

import pytest

from repro.crp import TwoPointFit, fit_two_point, mean_scheduling_slots


class TestFitConstruction:
    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            fit_two_point(2.0, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fit_two_point(1.0, 2.0, kind="spline")

    def test_endpoints_exact(self):
        for kind in ("linear", "exponential"):
            fit = fit_two_point(0.5, 3.0, kind=kind)
            assert fit.mean_scheduling(0.5) == pytest.approx(
                mean_scheduling_slots(0.5), rel=1e-12
            )
            assert fit.mean_scheduling(3.0) == pytest.approx(
                mean_scheduling_slots(3.0), rel=1e-12
            )


class TestFitQuality:
    def test_interior_error_bounded(self):
        """Between sensible endpoints the fit should be a rough but usable
        approximation (the paper reports close agreement)."""
        fit = fit_two_point(0.5, 3.0, kind="linear")
        for mu in (1.0, 1.5, 2.0):
            assert fit.relative_error(mu) < 0.5

    def test_exact_recursion_beats_fit_somewhere(self):
        """The exact recursion is the reference: the fit has nonzero error
        at interior points (quantifying what [Kurose 83] traded away)."""
        fit = fit_two_point(0.25, 4.0, kind="linear")
        assert max(fit.relative_error(mu) for mu in (0.7, 1.1, 2.0)) > 0.01

    def test_degenerate_linear_midpoint(self):
        fit = TwoPointFit(1.0, 2.0, 3.0, 5.0, "linear")
        assert fit.mean_scheduling(1.5) == pytest.approx(4.0)

    def test_exponential_interpolates_geometrically(self):
        fit = TwoPointFit(0.0, 2.0, 1.0, 4.0, "exponential")
        assert fit.mean_scheduling(1.0) == pytest.approx(2.0)

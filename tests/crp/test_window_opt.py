"""Tests for the window-length heuristic (policy element 2)."""

import pytest

from repro.crp import WindowSizer, mean_scheduling_slots, optimal_window_occupancy


class TestOptimalOccupancy:
    def test_value_in_expected_range(self):
        """The binary-splitting optimum is known to sit near 1.1."""
        mu = optimal_window_occupancy()
        assert 0.9 < mu < 1.3

    def test_is_a_local_minimum(self):
        mu = optimal_window_occupancy()
        best = mean_scheduling_slots(mu)
        for eps in (0.05, 0.2, 0.5):
            assert mean_scheduling_slots(mu - eps) >= best
            assert mean_scheduling_slots(mu + eps) >= best

    def test_cached(self):
        assert optimal_window_occupancy() == optimal_window_occupancy()


class TestWindowSizer:
    def test_default_uses_optimum(self):
        sizer = WindowSizer()
        assert sizer.target_occupancy == optimal_window_occupancy()

    def test_explicit_occupancy(self):
        sizer = WindowSizer(occupancy=2.0)
        assert sizer.target_occupancy == 2.0
        assert sizer.window_length(0.5) == pytest.approx(4.0)

    def test_window_scales_inversely_with_rate(self):
        sizer = WindowSizer()
        assert sizer.window_length(0.01) == pytest.approx(
            10 * sizer.window_length(0.1)
        )

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            WindowSizer().window_length(0.0)

    def test_mean_scheduling_at_target(self):
        sizer = WindowSizer(occupancy=1.5)
        assert sizer.mean_scheduling_slots() == pytest.approx(
            mean_scheduling_slots(1.5)
        )

    def test_heuristic_beats_neighbours_end_to_end(self):
        """The heuristic occupancy gives lower mean scheduling time than
        clearly off values — the §4.1 rationale."""
        best = WindowSizer().mean_scheduling_slots()
        assert best < mean_scheduling_slots(0.3)
        assert best < mean_scheduling_slots(4.0)

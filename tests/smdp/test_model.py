"""Tests for the generic SMDP container."""

import pytest

from repro.smdp import SMDP
from repro.smdp.model import ActionData


class TestActionData:
    def test_valid(self):
        ActionData({"a": 0.5, "b": 0.5}, sojourn=1.0, cost=0.0).validate()

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ActionData({"a": 0.5}, sojourn=1.0, cost=0.0).validate()

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            ActionData({"a": 1.5, "b": -0.5}, sojourn=1.0, cost=0.0).validate()

    def test_nonpositive_sojourn_rejected(self):
        with pytest.raises(ValueError):
            ActionData({"a": 1.0}, sojourn=0.0, cost=0.0).validate()


class TestSMDP:
    def build(self):
        model = SMDP()
        model.add_action("s0", "stay", {"s0": 1.0}, sojourn=1.0, cost=1.0)
        model.add_action("s0", "hop", {"s1": 1.0}, sojourn=2.0, cost=0.0)
        model.add_action("s1", "back", {"s0": 1.0}, sojourn=1.0, cost=3.0)
        return model

    def test_states_in_insertion_order(self):
        assert self.build().states() == ["s0", "s1"]

    def test_duplicate_action_rejected(self):
        model = self.build()
        with pytest.raises(ValueError):
            model.add_action("s0", "stay", {"s0": 1.0}, sojourn=1.0, cost=0.0)

    def test_unknown_state_lookup(self):
        with pytest.raises(KeyError):
            self.build().actions("nowhere")

    def test_unknown_action_lookup(self):
        with pytest.raises(KeyError):
            self.build().action("s0", "teleport")

    def test_validate_detects_dangling_target(self):
        model = SMDP()
        model.add_action("s0", "leap", {"limbo": 1.0}, sojourn=1.0, cost=0.0)
        with pytest.raises(ValueError, match="unknown state"):
            model.validate()

    def test_validate_empty_model(self):
        with pytest.raises(ValueError):
            SMDP().validate()

    def test_policy_from_chooser(self):
        model = self.build()
        policy = model.policy_from(lambda state, actions: sorted(actions)[0])
        assert policy == {"s0": "hop", "s1": "back"}

    def test_sojourn_bounds(self):
        assert self.build().uniform_sojourn_bound() == (1.0, 2.0)

"""Tests for relative value iteration (the policy-iteration cross-check)."""

import pytest

from repro.smdp import SMDP, policy_iteration, relative_value_iteration


def build_maintenance():
    model = SMDP()
    model.add_action("good", "run", {"good": 0.7, "bad": 0.3}, sojourn=1.0, cost=0.0)
    model.add_action("good", "service", {"good": 1.0}, sojourn=1.0, cost=0.4)
    model.add_action("bad", "repair", {"good": 1.0}, sojourn=2.0, cost=3.0)
    return model


class TestValueIteration:
    def test_matches_policy_iteration_gain(self):
        model = build_maintenance()
        vi = relative_value_iteration(model, tol=1e-11)
        pi = policy_iteration(model)
        assert vi.gain == pytest.approx(pi.gain, abs=1e-8)

    def test_matches_policy_iteration_policy(self):
        model = build_maintenance()
        vi = relative_value_iteration(model)
        pi = policy_iteration(model)
        assert vi.policy == pi.policy

    def test_converged_span_small(self):
        vi = relative_value_iteration(build_maintenance(), tol=1e-10)
        assert vi.span < 1e-10

    def test_single_state(self):
        model = SMDP()
        model.add_action("s", "a", {"s": 1.0}, sojourn=2.0, cost=1.0)
        vi = relative_value_iteration(model)
        assert vi.gain == pytest.approx(0.5)

    def test_picks_cheapest_of_many_self_loops(self):
        model = SMDP()
        model.add_action("s", "pricey", {"s": 1.0}, sojourn=1.0, cost=1.0)
        model.add_action("s", "cheap", {"s": 1.0}, sojourn=2.0, cost=1.0)
        model.add_action("s", "dear", {"s": 1.0}, sojourn=0.5, cost=1.0)
        vi = relative_value_iteration(model)
        assert vi.policy["s"] == "cheap"
        assert vi.gain == pytest.approx(0.5)

    def test_iteration_limit_raises(self):
        model = build_maintenance()
        with pytest.raises(RuntimeError):
            relative_value_iteration(model, tol=0.0, max_iterations=5)

"""Tests for the pseudo-time protocol SMDP (§3 model)."""

import pytest

from repro.smdp import (
    NEWER,
    OLDER,
    WAIT,
    build_protocol_smdp,
    evaluate_policy,
    lcfs_like_policy,
    minimum_slack_policy,
    policy_iteration,
    pseudo_loss_fraction,
    relative_value_iteration,
)


SMALL = dict(arrival_rate=0.15, deadline=6, transmission=3, depth=6)


@pytest.fixture(scope="module")
def small_model():
    return build_protocol_smdp(**SMALL)


class TestConstruction:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_protocol_smdp(0.1, 0, 3)
        with pytest.raises(ValueError):
            build_protocol_smdp(0.1, 5, 0)
        with pytest.raises(ValueError):
            build_protocol_smdp(0.0, 5, 3)
        with pytest.raises(ValueError):
            build_protocol_smdp(0.1, 5, 3, positions="corners")
        with pytest.raises(ValueError):
            build_protocol_smdp(0.1, 5, 3, splits=("sideways",))

    def test_states_cover_deadline_range(self, small_model):
        assert small_model.states() == list(range(SMALL["deadline"] + 1))

    def test_state_zero_only_waits(self, small_model):
        assert list(small_model.actions(0)) == [WAIT]

    def test_model_validates(self, small_model):
        small_model.validate()  # raises on malformed transitions

    def test_transition_probabilities_normalised(self, small_model):
        for state in small_model.states():
            for label, data in small_model.actions(state).items():
                assert sum(data.transitions.values()) == pytest.approx(1.0)
                assert data.sojourn > 0

    def test_costs_nonnegative(self, small_model):
        for state in small_model.states():
            for data in small_model.actions(state).values():
                assert data.cost >= -1e-12

    def test_window_length_restriction(self):
        model = build_protocol_smdp(
            0.15, 5, 3, window_lengths=lambda i: [2], depth=5
        )
        for state in range(1, 6):
            windows = [a for a in model.actions(state) if a != WAIT]
            lengths = {label[1] for label in windows}
            assert lengths == {min(2, state)}

    def test_positions_all_enumerates_offsets(self):
        model = build_protocol_smdp(0.15, 4, 3, positions="all", depth=5)
        offsets = {
            label[2]
            for label in model.actions(4)
            if label != WAIT and label[1] == 2
        }
        assert offsets == {0, 1, 2}


class TestPolicies:
    def test_minimum_slack_policy_shape(self, small_model):
        policy = minimum_slack_policy(small_model)
        assert policy[0] == WAIT
        for state in range(1, SMALL["deadline"] + 1):
            _, length, offset, split = policy[state]
            assert offset + length == state
            assert split == OLDER

    def test_lcfs_like_policy_shape(self, small_model):
        policy = lcfs_like_policy(small_model)
        for state in range(1, SMALL["deadline"] + 1):
            _, _length, offset, split = policy[state]
            assert offset == 0
            assert split == NEWER

    def test_minimum_slack_beats_lcfs_like(self, small_model):
        ms = evaluate_policy(small_model, minimum_slack_policy(small_model))
        lc = evaluate_policy(small_model, lcfs_like_policy(small_model))
        assert ms.gain < lc.gain

    def test_policy_iteration_reaches_theorem_elements(self, small_model):
        result = policy_iteration(small_model, lcfs_like_policy(small_model))
        for state, label in result.policy.items():
            if label == WAIT:
                continue
            _, length, offset, split = label
            assert offset + length == state  # element 1: oldest placement
            if length < state:
                assert split == OLDER  # element 3 (ties possible otherwise)

    def test_wait_is_dominated_under_load(self, small_model):
        result = policy_iteration(small_model)
        for state in range(1, SMALL["deadline"] + 1):
            assert result.policy[state] != WAIT

    def test_value_iteration_agrees(self, small_model):
        pi = policy_iteration(small_model)
        vi = relative_value_iteration(small_model, tol=1e-9)
        assert vi.gain == pytest.approx(pi.gain, abs=1e-6)

    def test_loss_fraction_conversion(self):
        assert pseudo_loss_fraction(0.03, 0.15) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            pseudo_loss_fraction(0.03, 0.0)

    def test_gain_increases_with_load(self):
        light = build_protocol_smdp(0.05, 6, 3, depth=6)
        heavy = build_protocol_smdp(0.30, 6, 3, depth=6)
        g_light = policy_iteration(light).gain / 0.05
        g_heavy = policy_iteration(heavy).gain / 0.30
        assert g_heavy > g_light

    def test_gain_decreases_with_deadline(self):
        tight = build_protocol_smdp(0.15, 4, 3, depth=6)
        loose = build_protocol_smdp(0.15, 10, 3, depth=6)
        assert policy_iteration(loose).gain < policy_iteration(tight).gain

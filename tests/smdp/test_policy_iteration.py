"""Tests for Howard policy iteration on hand-checkable SMDPs."""

import pytest

from repro.smdp import SMDP, evaluate_policy, policy_iteration


def two_state_model():
    """A toy maintenance model with a known optimal policy.

    State "good": either *run* (cheap but risks decay) or *service*
    (costly, stays good).  State "bad": must *repair*.
    Costs are per transition; sojourns differ to exercise the semi-Markov
    part.
    """
    model = SMDP()
    model.add_action("good", "run", {"good": 0.7, "bad": 0.3}, sojourn=1.0, cost=0.0)
    model.add_action("good", "service", {"good": 1.0}, sojourn=1.0, cost=0.4)
    model.add_action("bad", "repair", {"good": 1.0}, sojourn=2.0, cost=3.0)
    return model


class TestEvaluatePolicy:
    def test_single_state_gain_is_cost_rate(self):
        model = SMDP()
        model.add_action("s", "a", {"s": 1.0}, sojourn=4.0, cost=2.0)
        evaluation = evaluate_policy(model, {"s": "a"})
        assert evaluation.gain == pytest.approx(0.5)

    def test_run_policy_gain_closed_form(self):
        """Chain: good (τ=1) with 0.3 → bad (τ=2, cost 3) → good.

        Stationary fractions: visits alternate; expected cycle =
        E[visits in good] · 1 + 1 · 2 per bad visit.  Good sojourns per
        bad visit = 1/0.3; cycle time = 1/0.3 + 2; cycle cost = 3.
        """
        model = two_state_model()
        evaluation = evaluate_policy(model, {"good": "run", "bad": "repair"})
        expected = 3.0 / (1.0 / 0.3 + 2.0)
        assert evaluation.gain == pytest.approx(expected)

    def test_service_policy_gain(self):
        model = two_state_model()
        evaluation = evaluate_policy(model, {"good": "service", "bad": "repair"})
        assert evaluation.gain == pytest.approx(0.4)

    def test_incomplete_policy_rejected(self):
        model = two_state_model()
        with pytest.raises(ValueError):
            evaluate_policy(model, {"good": "run"})

    def test_reference_value_is_zero(self):
        model = two_state_model()
        evaluation = evaluate_policy(
            model, {"good": "run", "bad": "repair"}, reference="bad"
        )
        assert evaluation.values["bad"] == 0.0


class TestPolicyIteration:
    def test_finds_cheaper_policy(self):
        """run-gain ≈ 0.562 > service-gain 0.4, so service is optimal."""
        model = two_state_model()
        result = policy_iteration(model, {"good": "run", "bad": "repair"})
        assert result.policy["good"] == "service"
        assert result.gain == pytest.approx(0.4)

    def test_gain_history_monotone_nonincreasing(self):
        model = two_state_model()
        result = policy_iteration(model, {"good": "run", "bad": "repair"})
        assert all(b <= a + 1e-12 for a, b in zip(result.history, result.history[1:]))

    def test_starts_at_optimum_one_round(self):
        model = two_state_model()
        result = policy_iteration(model, {"good": "service", "bad": "repair"})
        assert result.iterations == 1

    def test_default_initial_policy(self):
        model = two_state_model()
        result = policy_iteration(model)
        assert result.gain == pytest.approx(0.4)

    def test_sojourn_sensitivity(self):
        """Make servicing slow enough and running becomes optimal again:
        the per-unit-time objective is what matters."""
        model = SMDP()
        model.add_action("good", "run", {"good": 0.7, "bad": 0.3}, sojourn=1.0, cost=0.0)
        model.add_action("good", "service", {"good": 1.0}, sojourn=0.25, cost=0.4)
        model.add_action("bad", "repair", {"good": 1.0}, sojourn=2.0, cost=3.0)
        result = policy_iteration(model)
        # service now costs 1.6 per unit time; running costs ~0.56
        assert result.policy["good"] == "run"

    def test_three_state_chain(self):
        """A chain where a far-sighted detour beats the greedy step.

        Kept unichain (c leaks back to a) — Howard's equations assume a
        single recurrent class per policy.
        """
        model = SMDP()
        model.add_action("a", "greedy", {"a": 1.0}, sojourn=1.0, cost=1.0)
        model.add_action("a", "detour", {"b": 1.0}, sojourn=1.0, cost=2.0)
        model.add_action("b", "go", {"c": 1.0}, sojourn=1.0, cost=0.0)
        model.add_action("c", "loop", {"c": 0.8, "a": 0.2}, sojourn=1.0, cost=0.1)
        result = policy_iteration(model)
        assert result.policy["a"] == "detour"
        # stationary (a, b, c) = (0.2, 0.2, 1)/1.4; gain = (0.2·2 + 0.1)/1.4
        assert result.gain == pytest.approx(0.5 / 1.4)

"""Tests for the Monte-Carlo pseudo-time protocol simulator."""

import numpy as np
import pytest

from repro.smdp import make_window_policy, simulate_pseudo_protocol
from repro.smdp.pseudo_sim import _run_windowing


class TestWindowingOnSamplePaths:
    def test_empty_window(self):
        slots, lo, hi, idx = _run_windowing([], 0.0, 4.0, "older")
        assert (slots, lo, hi, idx) == (1, 0.0, 4.0, None)

    def test_single_message(self):
        slots, lo, hi, idx = _run_windowing([2.0], 0.0, 4.0, "older")
        assert slots == 0
        assert (lo, hi) == (0.0, 4.0)
        assert idx == 0

    def test_two_messages_split_older_first(self):
        """Messages at delays 1 and 3 in window [0, 4]: collision, split →
        older half [2, 4] holds delay-3 only → success; resolved [2, 4]."""
        slots, lo, hi, idx = _run_windowing([1.0, 3.0], 0.0, 4.0, "older")
        assert slots == 1
        assert (lo, hi) == (2.0, 4.0)
        assert idx == 1  # the older message (delay 3) transmits first

    def test_two_messages_split_newer_first(self):
        slots, lo, hi, idx = _run_windowing([1.0, 3.0], 0.0, 4.0, "newer")
        assert slots == 1
        assert (lo, hi) == (0.0, 2.0)
        assert idx == 0  # the newer message goes first

    def test_clustered_messages_resolve(self):
        messages = [1.0, 1.1, 1.2, 3.9]
        slots, lo, hi, idx = _run_windowing(messages, 0.0, 4.0, "older")
        assert idx == 3  # oldest (largest delay) isolated first
        assert slots >= 1

    def test_message_outside_window_ignored(self):
        slots, _lo, _hi, idx = _run_windowing([10.0], 0.0, 4.0, "older")
        assert idx is None
        assert slots == 1


class TestPolicyFactory:
    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            make_window_policy(4.0, placement="sideways")

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            make_window_policy(4.0, split="diagonal")

    def test_random_needs_rng(self):
        with pytest.raises(ValueError):
            make_window_policy(4.0, placement="random")

    def test_zero_backlog_waits(self):
        policy = make_window_policy(4.0)
        assert policy(0.0) is None

    def test_oldest_placement_geometry(self):
        policy = make_window_policy(4.0, placement="oldest")
        w, offset, split = policy(10.0)
        assert (w, offset, split) == (4.0, 6.0, "older")

    def test_window_clipped_to_backlog(self):
        policy = make_window_policy(4.0)
        w, offset, _ = policy(2.5)
        assert w == 2.5 and offset == 0.0


class TestSimulation:
    def test_invalid_args(self, rng):
        policy = make_window_policy(4.0)
        with pytest.raises(ValueError):
            simulate_pseudo_protocol(0.1, 0.0, 3, policy, 100.0, rng)
        with pytest.raises(ValueError):
            simulate_pseudo_protocol(0.1, 10.0, 3, policy, 0.0, rng)

    def test_counts_consistent(self, rng):
        policy = make_window_policy(8.0)
        result = simulate_pseudo_protocol(0.1, 20.0, 3, policy, 20_000.0, rng)
        assert result.arrivals > 0
        assert result.losses + result.transmissions <= result.arrivals + 50
        assert 0.0 <= result.loss_fraction <= 1.0

    def test_light_load_low_loss(self, rng):
        policy = make_window_policy(20.0)
        result = simulate_pseudo_protocol(0.01, 60.0, 3, policy, 30_000.0, rng)
        assert result.loss_fraction < 0.02

    def test_theorem1_ranking_on_sample_paths(self, rng_factory):
        """Oldest placement + older split has the lowest *actual* loss —
        Theorem 1 on exact sample paths (no Assumption 1)."""
        losses = {}
        for placement, split in [("oldest", "older"), ("newest", "newer")]:
            policy = make_window_policy(6.0, placement=placement, split=split)
            result = simulate_pseudo_protocol(
                0.12, 15.0, 4, policy, 150_000.0, rng_factory(7),
                warmup_slots=5_000.0,
            )
            losses[(placement, split)] = result.loss_fraction
        assert losses[("oldest", "older")] < losses[("newest", "newer")]

    def test_lemma2_minimum_slack_pseudo_equals_actual(self, rng_factory):
        """Under the minimum-slack elements, resolution always removes the
        oldest backlog prefix, so pseudo delay = actual delay and no
        message is ever transmitted late (Lemma 2)."""
        policy = make_window_policy(6.0, placement="oldest", split="older")
        result = simulate_pseudo_protocol(
            0.12, 15.0, 4, policy, 100_000.0, rng_factory(3),
            warmup_slots=2_000.0,
        )
        assert result.late_transmissions == 0
        assert result.loss_fraction == result.pseudo_loss_fraction

    def test_lemma1_pseudo_loss_lower_bounds_actual(self, rng_factory):
        """For a non-optimal policy the pseudo loss understates the actual
        loss (Lemma 1): compression shrinks pseudo delays while actual
        age keeps growing."""
        policy = make_window_policy(6.0, placement="newest", split="newer")
        result = simulate_pseudo_protocol(
            0.12, 15.0, 4, policy, 150_000.0, rng_factory(5),
            warmup_slots=2_000.0,
        )
        assert result.late_transmissions > 0
        assert result.pseudo_loss_fraction < result.loss_fraction

    def test_throughput_bounded_by_channel(self, rng):
        policy = make_window_policy(5.0)
        result = simulate_pseudo_protocol(0.5, 30.0, 4, policy, 20_000.0, rng)
        # one message needs at least M slots
        assert result.throughput <= 1.0 / 4 + 0.01

    def test_policy_window_exceeding_backlog_raises(self, rng):
        def bad_policy(extent):
            return (extent + 5.0, 0.0, "older")

        with pytest.raises(ValueError):
            simulate_pseudo_protocol(0.1, 10.0, 3, bad_policy, 1_000.0, rng)

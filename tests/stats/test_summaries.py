"""Tests for summary-statistics helpers."""

import pytest

from repro.stats import describe, monotone_fraction, relative_error


class TestDescribe:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe([])

    def test_basic(self):
        s = describe([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_value_zero_std(self):
        assert describe([7.0]).std == 0.0


class TestRelativeError:
    def test_normal(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_error(0.5, 0.0) == 0.5

    def test_symmetric_sign(self):
        assert relative_error(9.0, 10.0) == relative_error(11.0, 10.0)


class TestMonotoneFraction:
    def test_needs_two(self):
        with pytest.raises(ValueError):
            monotone_fraction([1.0])

    def test_perfectly_decreasing(self):
        assert monotone_fraction([5.0, 4.0, 2.0, 1.0]) == 1.0

    def test_perfectly_increasing(self):
        assert monotone_fraction([1.0, 2.0, 3.0], decreasing=False) == 1.0

    def test_partial(self):
        assert monotone_fraction([3.0, 2.0, 2.5, 1.0]) == pytest.approx(2 / 3)

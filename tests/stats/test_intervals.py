"""Tests for confidence-interval machinery."""

import numpy as np
import pytest

from repro.stats import batch_means, proportion_interval, t_interval


class TestTInterval:
    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            t_interval([1.0])

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            t_interval([1.0, 2.0], level=1.0)

    def test_mean_and_bounds(self):
        ci = t_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        assert ci.low < 3.0 < ci.high
        assert ci.contains(3.0)
        assert ci.n == 5

    def test_degenerate_data_zero_width(self):
        ci = t_interval([2.0, 2.0, 2.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_coverage_calibration(self, rng):
        """~95% of 95% intervals should cover the true mean."""
        covered = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=15)
            if t_interval(sample, level=0.95).contains(10.0):
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.05)

    def test_higher_level_wider(self):
        data = [1.0, 3.0, 2.0, 4.0, 5.0, 2.5]
        assert (
            t_interval(data, level=0.99).half_width
            > t_interval(data, level=0.90).half_width
        )

    def test_str_format(self):
        text = str(t_interval([1.0, 2.0, 3.0]))
        assert "±" in text and "95%" in text


class TestBatchMeans:
    def test_needs_enough_data(self):
        with pytest.raises(ValueError):
            batch_means(list(range(10)), n_batches=20)

    def test_needs_two_batches(self):
        with pytest.raises(ValueError):
            batch_means(list(range(100)), n_batches=1)

    def test_iid_series_matches_t_interval_mean(self, rng):
        series = rng.normal(5.0, 1.0, size=2000)
        ci = batch_means(series, n_batches=20)
        assert ci.mean == pytest.approx(5.0, abs=0.15)

    def test_correlated_series_wider_than_naive(self, rng):
        """Batch means must widen the interval for autocorrelated data."""
        noise = rng.normal(0.0, 1.0, size=5000)
        ar = np.zeros(5000)
        for i in range(1, 5000):
            ar[i] = 0.95 * ar[i - 1] + noise[i]
        naive = t_interval(ar)
        batched = batch_means(ar, n_batches=10)
        assert batched.half_width > naive.half_width


class TestProportionInterval:
    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            proportion_interval(5, 0)
        with pytest.raises(ValueError):
            proportion_interval(11, 10)

    def test_centre_near_p_hat(self):
        ci = proportion_interval(30, 100)
        assert ci.mean == pytest.approx(0.3, abs=0.02)

    def test_zero_successes_positive_upper(self):
        """Wilson handles the boundary gracefully (no zero-width at p=0)."""
        ci = proportion_interval(0, 50)
        assert ci.low >= 0.0
        assert ci.high > 0.0

    def test_width_shrinks_with_n(self):
        small = proportion_interval(5, 50)
        large = proportion_interval(500, 5000)
        assert large.half_width < small.half_width

"""Tests for confidence-interval machinery."""

import numpy as np
import pytest

from repro.stats import (
    BINOMIAL_METHODS,
    batch_means,
    binomial_interval,
    jeffreys_interval,
    proportion_interval,
    t_interval,
    wilson_interval,
)


class TestTInterval:
    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            t_interval([1.0])

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            t_interval([1.0, 2.0], level=1.0)

    def test_mean_and_bounds(self):
        ci = t_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        assert ci.low < 3.0 < ci.high
        assert ci.contains(3.0)
        assert ci.n == 5

    def test_degenerate_data_zero_width(self):
        ci = t_interval([2.0, 2.0, 2.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_coverage_calibration(self, rng):
        """~95% of 95% intervals should cover the true mean."""
        covered = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=15)
            if t_interval(sample, level=0.95).contains(10.0):
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.05)

    def test_higher_level_wider(self):
        data = [1.0, 3.0, 2.0, 4.0, 5.0, 2.5]
        assert (
            t_interval(data, level=0.99).half_width
            > t_interval(data, level=0.90).half_width
        )

    def test_str_format(self):
        text = str(t_interval([1.0, 2.0, 3.0]))
        assert "±" in text and "95%" in text


class TestBatchMeans:
    def test_needs_enough_data(self):
        with pytest.raises(ValueError):
            batch_means(list(range(10)), n_batches=20)

    def test_needs_two_batches(self):
        with pytest.raises(ValueError):
            batch_means(list(range(100)), n_batches=1)

    def test_iid_series_matches_t_interval_mean(self, rng):
        series = rng.normal(5.0, 1.0, size=2000)
        ci = batch_means(series, n_batches=20)
        assert ci.mean == pytest.approx(5.0, abs=0.15)

    def test_correlated_series_wider_than_naive(self, rng):
        """Batch means must widen the interval for autocorrelated data."""
        noise = rng.normal(0.0, 1.0, size=5000)
        ar = np.zeros(5000)
        for i in range(1, 5000):
            ar[i] = 0.95 * ar[i - 1] + noise[i]
        naive = t_interval(ar)
        batched = batch_means(ar, n_batches=10)
        assert batched.half_width > naive.half_width


class TestProportionInterval:
    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            proportion_interval(5, 0)
        with pytest.raises(ValueError):
            proportion_interval(11, 10)

    def test_centre_near_p_hat(self):
        ci = proportion_interval(30, 100)
        assert ci.mean == pytest.approx(0.3, abs=0.02)

    def test_zero_successes_positive_upper(self):
        """Wilson handles the boundary gracefully (no zero-width at p=0)."""
        ci = proportion_interval(0, 50)
        assert ci.low >= 0.0
        assert ci.high > 0.0

    def test_width_shrinks_with_n(self):
        small = proportion_interval(5, 50)
        large = proportion_interval(500, 5000)
        assert large.half_width < small.half_width

    def test_delegates_to_wilson(self):
        a = proportion_interval(7, 40, level=0.9)
        b = wilson_interval(7, 40, level=0.9)
        assert a.mean == b.mean and a.half_width == b.half_width


class TestBoundaryBehaviour:
    """The ISSUE 10 satellite: nonzero, clamped intervals at p̂ ∈ {0, 1}.

    A degenerate t interval over identical lane fractions has zero
    width, which would stop a sequential arm after one wave on pure
    luck; the binomial backends must keep honest width at the
    boundaries instead.
    """

    @pytest.mark.parametrize("method", sorted(BINOMIAL_METHODS))
    def test_zero_losses_nonzero_width(self, method):
        ci = binomial_interval(0, 200, method=method)
        assert ci.half_width > 0.0
        assert ci.low >= 0.0
        assert ci.contains(0.0) or ci.low == 0.0

    @pytest.mark.parametrize("method", sorted(BINOMIAL_METHODS))
    def test_all_losses_nonzero_width(self, method):
        ci = binomial_interval(200, 200, method=method)
        assert ci.half_width > 0.0
        assert ci.high <= 1.0

    @pytest.mark.parametrize("method", sorted(BINOMIAL_METHODS))
    def test_clamped_to_unit_interval(self, method):
        for s, n in [(0, 3), (3, 3), (1, 3), (0, 10000), (9999, 10000)]:
            ci = binomial_interval(s, n, method=method)
            assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_t_interval_zero_width_at_boundary_is_why(self):
        # The degenerate behaviour the satellite exists to work around.
        assert t_interval([0.0, 0.0, 0.0, 0.0]).half_width == 0.0

    def test_jeffreys_boundary_convention(self):
        lo = jeffreys_interval(0, 50)
        hi = jeffreys_interval(50, 50)
        assert lo.low == 0.0 and lo.high > 0.0
        assert hi.high == 1.0 and hi.low < 1.0


class TestBinomialDispatch:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            binomial_interval(1, 10, method="exact")

    def test_known_methods(self):
        assert set(BINOMIAL_METHODS) == {"wilson", "jeffreys"}
        for method in BINOMIAL_METHODS:
            ci = binomial_interval(25, 100, method=method)
            assert ci.mean == pytest.approx(0.25, abs=0.03)
            assert ci.n == 100

    def test_invalid_counts(self):
        for method in BINOMIAL_METHODS:
            with pytest.raises(ValueError):
                binomial_interval(-1, 10, method=method)
            with pytest.raises(ValueError):
                binomial_interval(11, 10, method=method)
            with pytest.raises(ValueError):
                binomial_interval(1, 0, method=method)

    def test_agree_away_from_boundary(self):
        w = wilson_interval(300, 1000)
        j = jeffreys_interval(300, 1000)
        assert w.mean == pytest.approx(j.mean, abs=0.005)
        assert w.half_width == pytest.approx(j.half_width, rel=0.1)

    def test_wilson_coverage_calibration(self, rng):
        """~95% of 95% Wilson intervals should cover the true p."""
        p, covered, trials = 0.04, 0, 400
        for _ in range(trials):
            s = int(rng.binomial(500, p))
            if wilson_interval(s, 500).contains(p):
                covered += 1
        assert covered / trials == pytest.approx(0.95, abs=0.05)

    @pytest.mark.parametrize("method", sorted(BINOMIAL_METHODS))
    def test_fractional_effective_counts(self, method):
        """The sequential engine deflates pooled counts by a cluster
        design effect, so the backends must accept fractional counts:
        same p-hat, fewer effective trials, wider interval."""
        full = binomial_interval(160, 800, method=method)
        deflated = binomial_interval(160 / 28.5, 800 / 28.5, method=method)
        assert deflated.mean == pytest.approx(full.mean, abs=0.08)
        assert deflated.half_width > 2.0 * full.half_width
        assert 0.0 <= deflated.low <= deflated.high <= 1.0

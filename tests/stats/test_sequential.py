"""Tests for the group-sequential stopping machinery."""

import pytest

from repro.stats import (
    SPENDING_FUNCTIONS,
    SequentialConfig,
    WaveDecision,
    binomial_interval,
    cumulative_alpha,
    decide_wave,
    design_effect,
    look_level,
)


def _config(**overrides):
    defaults = dict(
        ci_target=0.01,
        wave_size=4,
        min_replications=8,
        max_replications=64,
    )
    defaults.update(overrides)
    return SequentialConfig(**defaults)


class TestSpendingFunctions:
    @pytest.mark.parametrize("spending", sorted(SPENDING_FUNCTIONS))
    def test_monotone_in_information(self, spending):
        alpha = 0.05
        previous = 0.0
        for t in (0.1, 0.25, 0.5, 0.75, 1.0):
            spent = cumulative_alpha(spending, alpha, t)
            assert spent >= previous
            previous = spent

    @pytest.mark.parametrize("spending", sorted(SPENDING_FUNCTIONS))
    def test_spends_exactly_alpha_at_full_information(self, spending):
        assert cumulative_alpha(spending, 0.05, 1.0) == pytest.approx(
            0.05, abs=1e-9
        )

    def test_obf_back_loads_the_spend(self):
        """O'Brien–Fleming keeps early looks strict: at half the
        information, far less than half the alpha is spent."""
        assert cumulative_alpha("obf", 0.05, 0.5) < 0.5 * 0.05
        assert cumulative_alpha("obf", 0.05, 0.1) < cumulative_alpha(
            "pocock", 0.05, 0.1
        )

    def test_unknown_spending(self):
        with pytest.raises(ValueError):
            cumulative_alpha("haybittle", 0.05, 0.5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            cumulative_alpha("obf", 0.0, 0.5)


class TestLookLevels:
    def test_increments_sum_to_at_most_alpha(self):
        """The per-look spends across any look schedule stay within the
        total alpha budget — the union bound that keeps simultaneous
        coverage at the nominal level."""
        config = _config()
        alpha = 1.0 - config.level
        spent = 0.0
        previous_n = 0
        for n in range(config.min_replications,
                       config.max_replications + 1,
                       config.wave_size):
            spent += 1.0 - look_level(config, n, previous_n)
            previous_n = n
        # The epsilon floor on each look's spend (alpha·1e-6, so a level
        # is never exactly 1.0) can push the sum a hair past alpha.
        assert spent <= alpha + len(range(8, 65, 4)) * alpha * 1e-6

    def test_levels_are_stricter_than_nominal(self):
        config = _config()
        assert look_level(config, 8, 0) > config.level


class TestDecideWave:
    def test_below_min_never_stops(self):
        config = _config()
        decision = decide_wave(
            config, 1, [0.1, 0.2], (3, 20), previous_n=0
        )
        assert not decision.stop
        assert decision.reason == "below-min-replications"

    def test_stops_at_ci_target(self):
        config = _config(ci_target=0.2, method="wilson")
        fractions = [0.1] * 8
        decision = decide_wave(config, 1, fractions, (8, 80), previous_n=0)
        assert decision.stop
        assert decision.reason == "ci-target"
        assert decision.half_width <= 0.2

    def test_stops_at_max_replications(self):
        config = _config(ci_target=1e-9)
        fractions = [0.1] * 64
        decision = decide_wave(
            config, 15, fractions, (640, 6400), previous_n=60
        )
        assert decision.stop
        assert decision.reason == "max-replications"

    def test_pure_function_of_inputs(self):
        """The decision is replayable: identical inputs, identical
        decision object — this is what lets the journal pin stopping."""
        config = _config()
        args = (config, 3, [0.05] * 16, (40, 800))
        a = decide_wave(*args, previous_n=12)
        b = decide_wave(*args, previous_n=12)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_later_looks_easier_under_obf(self):
        """OBF spends almost nothing early, so the first look runs at a
        much stricter per-look level than the final one."""
        config = _config()
        first = look_level(config, 8, 0)
        final = look_level(config, 64, 60)
        assert first > final > config.level

    def test_t_method_on_fractions(self):
        config = _config(method="t", ci_target=0.5)
        decision = decide_wave(
            config, 1, [0.1, 0.12, 0.09, 0.11] * 2, (8, 80), previous_n=0
        )
        assert decision.stop
        assert isinstance(decision, WaveDecision)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _config(ci_target=0.0)
        with pytest.raises(ValueError):
            _config(max_replications=4)  # < min_replications
        with pytest.raises(ValueError):
            _config(method="wald")
        with pytest.raises(ValueError):
            _config(spending="none")


class TestDesignEffect:
    """Cluster correction of the pooled-count backends.

    Messages within one replication are correlated (losses cluster
    under contention), so the pooled Wilson/Jeffreys interval must be
    widened by the measured between-replication variance — otherwise
    arms stop early and report bands ~sqrt(deff) too narrow on exactly
    the high-loss arms the figures compare.
    """

    # Eight units of 100 messages each; pooled p-hat is 0.2 either way,
    # but the clustered arm concentrates its losses in half the units.
    CLUSTERED = [0.0] * 4 + [0.4] * 4
    HOMOGENEOUS = [0.2] * 8
    COUNTS = (160, 800)

    def test_clustered_fractions_inflate_the_effect(self):
        assert design_effect(self.HOMOGENEOUS, self.COUNTS) == 1.0
        assert design_effect(self.CLUSTERED, self.COUNTS) > 10.0

    def test_clamped_to_one_at_boundaries_and_single_unit(self):
        # Degenerate p-hat (zero binomial variance) and k < 2 keep the
        # plain pooled interval — the Wilson boundary guard.
        assert design_effect([0.0] * 8, (0, 800)) == 1.0
        assert design_effect([1.0] * 8, (800, 800)) == 1.0
        assert design_effect([0.3], (30, 100)) == 1.0
        assert design_effect([], (0, 0)) == 1.0

    @pytest.mark.parametrize("method", ["wilson", "jeffreys"])
    def test_clustering_widens_the_pooled_interval(self, method):
        config = _config(ci_target=1e-9, method=method)
        clustered = decide_wave(
            config, 1, self.CLUSTERED, self.COUNTS, previous_n=0
        )
        homogeneous = decide_wave(
            config, 1, self.HOMOGENEOUS, self.COUNTS, previous_n=0
        )
        assert homogeneous.design_effect == 1.0
        assert clustered.design_effect > 1.0
        assert clustered.half_width > homogeneous.half_width

    def test_clustered_arm_does_not_stop_on_naive_width(self):
        """The regression the correction exists for: the pooled counts
        alone would certify the target, but the between-replication
        variance says otherwise — the arm must keep running."""
        config = _config(ci_target=0.08, method="wilson")
        decision = decide_wave(
            config, 1, self.CLUSTERED, self.COUNTS, previous_n=0
        )
        naive = binomial_interval(*self.COUNTS, level=decision.look_level)
        assert naive.half_width <= config.ci_target
        assert not decision.stop
        assert decision.reason == "continue"

    def test_homogeneous_arm_still_stops(self):
        config = _config(ci_target=0.08, method="wilson")
        decision = decide_wave(
            config, 1, self.HOMOGENEOUS, self.COUNTS, previous_n=0
        )
        assert decision.stop
        assert decision.reason == "ci-target"

    def test_design_effect_is_journaled(self):
        config = _config()
        decision = decide_wave(
            config, 1, self.CLUSTERED, self.COUNTS, previous_n=0
        )
        payload = decision.to_dict()
        assert payload["design_effect"] == pytest.approx(
            decision.design_effect
        )
        assert payload["design_effect"] == pytest.approx(
            design_effect(self.CLUSTERED, self.COUNTS)
        )

    def test_t_backend_needs_no_correction(self):
        # The t interval is formed over the per-unit fractions, so the
        # between-replication variance is already what it measures.
        config = _config(method="t")
        decision = decide_wave(
            config, 1, self.CLUSTERED, self.COUNTS, previous_n=0
        )
        assert decision.design_effect == 1.0

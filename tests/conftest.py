"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the analytic code paths are fast, but a few
# property tests construct distributions; keep examples bounded so the
# whole suite stays snappy.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _hermetic_analytic_cache(tmp_path_factory, monkeypatch):
    """Point the analytic memo (repro.cache) at a per-session temp dir.

    Keeps the suite independent of whatever a developer's ~/.cache
    holds, and keeps test runs from writing outside the sandbox.
    """
    from repro import cache

    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.getbasetemp() / "repro-cache")
    )
    cache.clear_memory()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for simulation tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory producing independent deterministic generators."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make

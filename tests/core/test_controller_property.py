"""Property test: Theorem 1's contiguity invariant under fuzzed traffic.

Under the optimal policy with fault-free feedback, the controller's
unresolved set must remain a single contiguous interval at every
decision boundary (end of §3.2) — the structural fact the whole
windowing analysis rests on.  Hypothesis drives the protocol over
arbitrary arrival patterns; arrivals are drawn on a 0.25-slot grid so
two arrivals are always separable by the splitting process.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ControlPolicy, ProtocolController
from repro.core.window import ChannelFeedback

M = 4
DEADLINE = 30.0

arrival_grids = st.lists(
    st.integers(min_value=0, max_value=400),
    min_size=0,
    max_size=40,
    unique=True,
).map(lambda grid: sorted(0.25 * g for g in grid))


def drive_protocol(controller, arrivals, horizon):
    """Run the window protocol with exact (fault-free) channel feedback."""
    pending = list(arrivals)
    now = 0.0
    checks = 0
    while now < horizon:
        process = controller.begin_process(now)
        assert controller.unresolved.n_intervals <= 1
        checks += 1
        if process is None:
            now += 1.0
            continue
        while not process.done:
            span = process.current_span
            inside = [t for t in pending if span.contains(t)]
            if not inside:
                feedback = ChannelFeedback.IDLE
                now += 1.0
            elif len(inside) == 1:
                feedback = ChannelFeedback.SUCCESS
                pending.remove(inside[0])
                now += float(M)
            else:
                feedback = ChannelFeedback.COLLISION
                now += 1.0
            process.on_feedback(feedback)
        controller.complete_process(process)
        assert controller.unresolved.n_intervals <= 1
        checks += 1
        # Element 4 at the station side: drop what the controller's
        # discard deadline has aged out.
        horizon_cut = now - DEADLINE
        pending = [t for t in pending if t >= horizon_cut]
    return checks


class TestContiguityInvariant:
    @settings(max_examples=50, deadline=None)
    @given(arrivals=arrival_grids)
    def test_unresolved_stays_one_interval(self, arrivals):
        policy = ControlPolicy.optimal(DEADLINE, accepted_rate=0.1)
        controller = ProtocolController(policy)
        horizon = (arrivals[-1] if arrivals else 0.0) + 3 * DEADLINE
        checks = drive_protocol(controller, arrivals, horizon)
        assert checks > 0

    @settings(max_examples=25, deadline=None)
    @given(
        arrivals=arrival_grids,
        deadline=st.sampled_from([12.0, 30.0, 60.0]),
    )
    def test_invariant_across_deadlines(self, arrivals, deadline):
        policy = ControlPolicy.optimal(deadline, accepted_rate=0.1)
        controller = ProtocolController(policy)
        pending = list(arrivals)
        now = 0.0
        horizon = (arrivals[-1] if arrivals else 0.0) + 3 * deadline
        while now < horizon:
            process = controller.begin_process(now)
            assert controller.unresolved.n_intervals <= 1
            if process is None:
                now += 1.0
                continue
            while not process.done:
                span = process.current_span
                inside = [t for t in pending if span.contains(t)]
                if not inside:
                    process.on_feedback(ChannelFeedback.IDLE)
                    now += 1.0
                elif len(inside) == 1:
                    pending.remove(inside[0])
                    process.on_feedback(ChannelFeedback.SUCCESS)
                    now += float(M)
                else:
                    process.on_feedback(ChannelFeedback.COLLISION)
                    now += 1.0
            controller.complete_process(process)
            assert controller.unresolved.n_intervals <= 1
            pending = [t for t in pending if t >= now - deadline]

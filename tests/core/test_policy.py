"""Tests for the control-policy elements and factories."""

import numpy as np
import pytest

from repro.core import (
    ControlPolicy,
    FixedLength,
    FullBacklogLength,
    IntervalSet,
    NewestFirstPosition,
    OccupancyLength,
    OldestFirstPosition,
    RandomPosition,
)
from repro.crp import optimal_window_occupancy


def backlog(*intervals):
    s = IntervalSet()
    for lo, hi in intervals:
        s.add(lo, hi)
    return s


class TestPositionRules:
    def test_oldest_first(self):
        s = backlog((0.0, 4.0), (6.0, 10.0))
        span = OldestFirstPosition().select(s, 5.0, None)
        assert span.pieces == ((0.0, 4.0), (6.0, 7.0))

    def test_newest_first(self):
        s = backlog((0.0, 4.0), (6.0, 10.0))
        span = NewestFirstPosition().select(s, 5.0, None)
        assert span.pieces == ((3.0, 4.0), (6.0, 10.0))

    def test_random_requires_rng(self):
        s = backlog((0.0, 10.0))
        with pytest.raises(ValueError):
            RandomPosition().select(s, 2.0, None)

    def test_random_within_backlog(self):
        s = backlog((0.0, 10.0))
        rng = np.random.default_rng(3)
        for _ in range(20):
            span = RandomPosition().select(s, 2.0, rng)
            assert span.measure == pytest.approx(2.0)
            assert span.start >= 0.0
            assert span.end <= 10.0


class TestLengthRules:
    def test_fixed(self):
        assert FixedLength(7.5).length(100.0) == 7.5

    def test_fixed_positive_required(self):
        with pytest.raises(ValueError):
            FixedLength(0.0)

    def test_full_backlog(self):
        assert FullBacklogLength().length(42.0) == 42.0
        assert FullBacklogLength().length(0.0) == 1.0

    def test_occupancy_default_uses_mu_star(self):
        rule = OccupancyLength(arrival_rate=0.02)
        assert rule.length(1000.0) == pytest.approx(
            optimal_window_occupancy() / 0.02
        )

    def test_occupancy_explicit(self):
        rule = OccupancyLength(arrival_rate=0.5, occupancy=2.0)
        assert rule.length(1000.0) == pytest.approx(4.0)

    def test_occupancy_rate_positive(self):
        with pytest.raises(ValueError):
            OccupancyLength(arrival_rate=0.0)


class TestControlPolicy:
    def test_optimal_factory(self):
        policy = ControlPolicy.optimal(deadline=100.0, accepted_rate=0.02)
        assert isinstance(policy.position, OldestFirstPosition)
        assert policy.split == "older"
        assert policy.discard_deadline == 100.0
        assert policy.name == "controlled"

    def test_uncontrolled_factories(self):
        fcfs = ControlPolicy.uncontrolled_fcfs(0.02)
        lcfs = ControlPolicy.uncontrolled_lcfs(0.02)
        rnd = ControlPolicy.uncontrolled_random(0.02)
        assert fcfs.discard_deadline is None
        assert isinstance(lcfs.position, NewestFirstPosition)
        assert lcfs.split == "newer"
        assert isinstance(rnd.position, RandomPosition)
        assert rnd.split == "random"

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            ControlPolicy(
                position=OldestFirstPosition(),
                length=FixedLength(1.0),
                split="sideways",
                discard_deadline=None,
                name="x",
            )

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            ControlPolicy(
                position=OldestFirstPosition(),
                length=FixedLength(1.0),
                split="older",
                discard_deadline=0.0,
                name="x",
            )

    def test_invalid_arity_rejected(self):
        with pytest.raises(ValueError):
            ControlPolicy(
                position=OldestFirstPosition(),
                length=FixedLength(1.0),
                split="older",
                discard_deadline=None,
                name="x",
                split_arity=1,
            )

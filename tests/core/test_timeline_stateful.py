"""Model-based (stateful) testing of IntervalSet against a reference.

The reference model is a fine boolean grid over [0, 100): each cell is
"unresolved" or not.  Every IntervalSet operation is mirrored on the
grid (on cell boundaries, where both are exact), and the invariants —
measure, membership, oldest/youngest, clamp results — must agree after
every step.  Hypothesis drives randomised operation sequences.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import IntervalSet

RESOLUTION = 0.5  # grid cell size; all operations snap to this lattice
SPAN_END = 100.0
N_CELLS = int(SPAN_END / RESOLUTION)

cells = st.integers(0, N_CELLS - 1)
lengths = st.integers(1, 40)


class IntervalSetMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.real = IntervalSet()
        self.grid = np.zeros(N_CELLS, dtype=bool)

    # -- operations ------------------------------------------------------------

    @rule(start=cells, length=lengths)
    def add(self, start, length):
        end = min(start + length, N_CELLS)
        self.real.add(start * RESOLUTION, end * RESOLUTION)
        self.grid[start:end] = True

    @rule(start=cells, length=lengths)
    def subtract(self, start, length):
        end = min(start + length, N_CELLS)
        self.real.subtract(start * RESOLUTION, end * RESOLUTION)
        self.grid[start:end] = False

    @rule(cut=cells)
    def clamp(self, cut):
        removed = self.real.clamp_before(cut * RESOLUTION)
        expected = float(self.grid[:cut].sum()) * RESOLUTION
        self.grid[:cut] = False
        assert abs(removed - expected) < 1e-6

    # -- invariants ------------------------------------------------------------

    @invariant()
    def measures_agree(self):
        assert abs(self.real.measure - self.grid.sum() * RESOLUTION) < 1e-6

    @invariant()
    def endpoints_agree(self):
        occupied = np.flatnonzero(self.grid)
        if occupied.size == 0:
            assert self.real.is_empty()
        else:
            assert abs(self.real.oldest() - occupied[0] * RESOLUTION) < 1e-6
            assert abs(
                self.real.youngest() - (occupied[-1] + 1) * RESOLUTION
            ) < 1e-6

    @invariant()
    def intervals_well_formed(self):
        intervals = self.real.intervals()
        for lo, hi in intervals:
            assert hi > lo
        for (_, hi1), (lo2, _) in zip(intervals, intervals[1:]):
            assert hi1 < lo2 + 1e-9

    @invariant()
    def slices_cover_correct_measure(self):
        measure = self.real.measure
        if measure > RESOLUTION:
            half = measure / 2
            oldest = self.real.slice_oldest(half)
            youngest = self.real.slice_youngest(half)
            assert abs(oldest.measure - half) < 1e-6
            assert abs(youngest.measure - half) < 1e-6
            # the two halves partition the backlog
            assert oldest.end <= youngest.start + measure  # loose sanity


TestIntervalSetStateful = IntervalSetMachine.TestCase
TestIntervalSetStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

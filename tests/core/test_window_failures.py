"""Failure-injection tests: inconsistent feedback must fail loudly.

The windowing state machine encodes protocol *knowledge* (e.g. "the last
sibling holds at least two arrivals").  A channel that reports
physically impossible feedback — possible only through a bug in the
driving simulator — must be detected rather than silently corrupting the
time-axis bookkeeping.
"""

import pytest

from repro.core import ChannelFeedback, Span, WindowingProcess

IDLE = ChannelFeedback.IDLE
SUCCESS = ChannelFeedback.SUCCESS
COLLISION = ChannelFeedback.COLLISION


def window(width=8.0):
    return Span(((0.0, width),))


class TestInconsistentFeedback:
    def test_feedback_after_completion(self):
        process = WindowingProcess(window())
        process.on_feedback(IDLE)
        with pytest.raises(RuntimeError):
            process.on_feedback(SUCCESS)

    def test_all_halves_idle_is_impossible(self):
        """After a collision, both halves idle contradicts n >= 2: the
        machine splits the 'known-occupied' sibling forever, eventually
        hitting the depth guard."""
        process = WindowingProcess(window())
        process.on_feedback(COLLISION)
        with pytest.raises(RuntimeError, match="indistinguishable"):
            for _ in range(200):
                process.on_feedback(IDLE)

    def test_endless_collisions_hit_depth_guard(self):
        process = WindowingProcess(window())
        with pytest.raises(RuntimeError, match="indistinguishable"):
            for _ in range(200):
                process.on_feedback(COLLISION)

    def test_slots_accounting_stops_at_done(self):
        process = WindowingProcess(window())
        process.on_feedback(COLLISION)
        process.on_feedback(SUCCESS)
        slots_at_done = process.slots_spent
        assert process.done
        assert slots_at_done == 1  # only the collision slot


class TestResolvedBookkeeping:
    def test_resolution_never_exceeds_window(self):
        """However the feedback walk goes, resolved measure ≤ window."""
        import numpy as np

        rng = np.random.default_rng(8)
        for _ in range(50):
            process = WindowingProcess(window(16.0))
            while not process.done:
                roll = rng.random()
                try:
                    if roll < 0.3:
                        process.on_feedback(SUCCESS)
                    elif roll < 0.65:
                        process.on_feedback(IDLE)
                    else:
                        process.on_feedback(COLLISION)
                except RuntimeError:
                    break
            resolved = sum(span.measure for span in process.resolved_spans)
            assert resolved <= 16.0 + 1e-9

    def test_resolved_spans_disjoint(self):
        import numpy as np

        rng = np.random.default_rng(9)
        for _ in range(50):
            process = WindowingProcess(window(16.0), arity=3)
            while not process.done:
                roll = rng.random()
                try:
                    if roll < 0.3:
                        process.on_feedback(SUCCESS)
                    elif roll < 0.7:
                        process.on_feedback(IDLE)
                    else:
                        process.on_feedback(COLLISION)
                except RuntimeError:
                    break
            pieces = sorted(
                piece for span in process.resolved_spans for piece in span.pieces
            )
            for (a1, b1), (a2, b2) in zip(pieces, pieces[1:]):
                assert b1 <= a2 + 1e-9

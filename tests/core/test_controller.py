"""Tests for the shared protocol controller."""

import numpy as np
import pytest

from repro.core import (
    ChannelFeedback,
    ControlPolicy,
    FixedLength,
    OldestFirstPosition,
    ProtocolController,
)


def make_policy(deadline=None, length=4.0):
    return ControlPolicy(
        position=OldestFirstPosition(),
        length=FixedLength(length),
        split="older",
        discard_deadline=deadline,
        name="test",
    )


class TestTimeAccounting:
    def test_advance_time_accumulates_unresolved(self):
        controller = ProtocolController(make_policy())
        controller.advance_time(10.0)
        assert controller.backlog_measure() == pytest.approx(10.0)
        assert controller.t_past == 0.0

    def test_time_moving_backwards_rejected(self):
        controller = ProtocolController(make_policy())
        controller.advance_time(10.0)
        with pytest.raises(ValueError):
            controller.advance_time(5.0)

    def test_t_past_none_when_resolved(self):
        controller = ProtocolController(make_policy())
        assert controller.t_past is None


class TestDiscard:
    def test_no_deadline_returns_none(self):
        controller = ProtocolController(make_policy(deadline=None))
        controller.advance_time(10.0)
        assert controller.apply_discard(10.0) is None

    def test_discard_removes_stale_time(self):
        controller = ProtocolController(make_policy(deadline=4.0))
        controller.advance_time(10.0)
        report = controller.apply_discard(10.0)
        assert report.horizon == pytest.approx(6.0)
        assert report.measure_removed == pytest.approx(6.0)
        assert controller.t_past == pytest.approx(6.0)

    def test_discard_noop_when_fresh(self):
        controller = ProtocolController(make_policy(deadline=100.0))
        controller.advance_time(10.0)
        report = controller.apply_discard(10.0)
        assert report.measure_removed == 0.0


class TestProcessLifecycle:
    def test_begin_none_when_no_backlog(self):
        controller = ProtocolController(make_policy())
        assert controller.begin_process(0.0) is None

    def test_begin_selects_window_at_t_past(self):
        controller = ProtocolController(make_policy(length=4.0))
        process = controller.begin_process(10.0)
        assert process is not None
        assert process.current_span.pieces == ((0.0, 4.0),)

    def test_window_clipped_to_backlog(self):
        controller = ProtocolController(make_policy(length=100.0))
        process = controller.begin_process(3.0)
        assert process.current_span.measure == pytest.approx(3.0)

    def test_complete_resolves_time(self):
        controller = ProtocolController(make_policy(length=4.0))
        process = controller.begin_process(10.0)
        process.on_feedback(ChannelFeedback.IDLE)
        controller.complete_process(process)
        assert controller.t_past == pytest.approx(4.0)
        assert controller.backlog_measure() == pytest.approx(6.0)

    def test_complete_unfinished_rejected(self):
        controller = ProtocolController(make_policy())
        process = controller.begin_process(10.0)
        with pytest.raises(ValueError):
            controller.complete_process(process)

    def test_optimal_policy_keeps_single_interval(self):
        """Consequence of Theorem 1: under oldest-first + older-split the
        unresolved set never fragments — t_past is the whole state."""
        rng = np.random.default_rng(4)
        controller = ProtocolController(make_policy(deadline=50.0, length=6.0))
        now = 0.0
        for _ in range(200):
            now += 1.0 + rng.exponential(3.0)
            process = controller.begin_process(now)
            if process is None:
                continue
            # Feed it a random but *consistent* feedback walk: collisions
            # then an idle or success.
            depth = rng.integers(0, 3)
            try:
                for _ in range(depth):
                    process.on_feedback(ChannelFeedback.COLLISION)
                process.on_feedback(
                    ChannelFeedback.SUCCESS
                    if rng.random() < 0.7
                    else ChannelFeedback.IDLE
                )
            except RuntimeError:
                pass
            if not process.done:
                # finish with a success to keep the walk consistent
                while not process.done:
                    process.on_feedback(ChannelFeedback.SUCCESS)
            controller.complete_process(process)
            assert controller.unresolved.n_intervals <= 1


class TestResynchronize:
    def test_reset_covers_recent_horizon(self):
        controller = ProtocolController(make_policy(deadline=50.0))
        controller.advance_time(500.0)
        process = controller.begin_process(500.0)
        assert process is not None
        controller.resynchronize(500.0, 50.0)
        assert controller.frontier == 500.0
        assert controller.unresolved.n_intervals == 1
        assert controller.t_past == 450.0
        assert controller.unresolved.measure == pytest.approx(50.0)

    def test_reset_clamps_at_time_origin(self):
        controller = ProtocolController(make_policy())
        controller.advance_time(10.0)
        controller.resynchronize(10.0, 100.0)
        assert controller.t_past == 0.0
        assert controller.unresolved.measure == pytest.approx(10.0)

    def test_invalid_horizon_rejected(self):
        controller = ProtocolController(make_policy())
        with pytest.raises(ValueError):
            controller.resynchronize(10.0, 0.0)

    def test_protocol_restarts_cleanly_after_reset(self):
        controller = ProtocolController(make_policy(deadline=50.0))
        controller.advance_time(200.0)
        controller.resynchronize(200.0, 50.0)
        process = controller.begin_process(200.0)
        assert process is not None
        process.on_feedback(ChannelFeedback.IDLE)
        while not process.done:
            process.on_feedback(ChannelFeedback.IDLE)
        controller.complete_process(process)
        assert controller.unresolved.n_intervals <= 1

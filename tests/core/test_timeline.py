"""Tests for IntervalSet and Span (the station's time-axis view)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IntervalSet, Span


class TestSpan:
    def test_measure(self):
        span = Span(((0.0, 2.0), (5.0, 8.0)))
        assert span.measure == pytest.approx(5.0)

    def test_start_end(self):
        span = Span(((0.0, 2.0), (5.0, 8.0)))
        assert span.start == 0.0
        assert span.end == 8.0

    def test_empty_span(self):
        span = Span(())
        assert span.is_empty()
        with pytest.raises(ValueError):
            span.start

    def test_split_half_contiguous(self):
        older, newer = Span(((0.0, 4.0),)).split_half()
        assert older.pieces == ((0.0, 2.0),)
        assert newer.pieces == ((2.0, 4.0),)

    def test_split_half_across_gap(self):
        span = Span(((0.0, 2.0), (10.0, 12.0)))
        older, newer = span.split_half()
        assert older.pieces == ((0.0, 2.0),)
        assert newer.pieces == ((10.0, 12.0),)

    def test_split_at_measure_partial_piece(self):
        span = Span(((0.0, 3.0), (5.0, 6.0)))
        older, newer = span.split_at_measure(1.5)
        assert older.pieces == ((0.0, 1.5),)
        assert newer.measure == pytest.approx(2.5)

    def test_split_measure_out_of_range(self):
        with pytest.raises(ValueError):
            Span(((0.0, 1.0),)).split_at_measure(2.0)

    def test_contains(self):
        span = Span(((0.0, 1.0), (3.0, 4.0)))
        assert span.contains(0.5)
        assert span.contains(3.0)
        assert not span.contains(2.0)

    @given(width=st.floats(0.1, 100.0), cut=st.floats(0.0, 1.0))
    def test_split_preserves_measure_property(self, width, cut):
        span = Span(((0.0, width),))
        older, newer = span.split_at_measure(cut * width)
        assert older.measure + newer.measure == pytest.approx(width)


class TestIntervalSet:
    def test_empty(self):
        s = IntervalSet()
        assert s.is_empty()
        assert s.measure == 0.0
        with pytest.raises(ValueError):
            s.oldest()
        with pytest.raises(ValueError):
            s.youngest()

    def test_add_and_measure(self):
        s = IntervalSet()
        s.add(0.0, 5.0)
        assert s.measure == pytest.approx(5.0)
        assert s.oldest() == 0.0
        assert s.youngest() == 5.0

    def test_add_merges_overlapping(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.add(1.0, 4.0)
        assert s.intervals() == [(0.0, 4.0)]

    def test_add_merges_adjacent(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.add(2.0, 4.0)
        assert s.intervals() == [(0.0, 4.0)]

    def test_add_keeps_disjoint(self):
        s = IntervalSet()
        s.add(0.0, 1.0)
        s.add(3.0, 4.0)
        assert s.n_intervals == 2

    def test_add_degenerate_ignored(self):
        s = IntervalSet()
        s.add(1.0, 1.0)
        assert s.is_empty()

    def test_subtract_middle_splits(self):
        s = IntervalSet()
        s.add(0.0, 10.0)
        s.subtract(3.0, 5.0)
        assert s.intervals() == [(0.0, 3.0), (5.0, 10.0)]

    def test_subtract_edge(self):
        s = IntervalSet()
        s.add(0.0, 10.0)
        s.subtract(0.0, 4.0)
        assert s.intervals() == [(4.0, 10.0)]

    def test_subtract_across_intervals(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.add(4.0, 6.0)
        s.add(8.0, 10.0)
        s.subtract(1.0, 9.0)
        assert s.intervals() == [(0.0, 1.0), (9.0, 10.0)]

    def test_subtract_everything(self):
        s = IntervalSet()
        s.add(0.0, 5.0)
        s.subtract(-1.0, 6.0)
        assert s.is_empty()

    def test_subtract_nonoverlapping_noop(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.subtract(5.0, 7.0)
        assert s.intervals() == [(0.0, 2.0)]

    def test_subtract_span(self):
        s = IntervalSet()
        s.add(0.0, 10.0)
        s.subtract_span(Span(((1.0, 2.0), (8.0, 9.0))))
        assert s.measure == pytest.approx(8.0)
        assert s.n_intervals == 3

    def test_clamp_before_reports_removed(self):
        s = IntervalSet()
        s.add(0.0, 3.0)
        s.add(5.0, 8.0)
        removed = s.clamp_before(6.0)
        assert removed == pytest.approx(4.0)
        assert s.intervals() == [(6.0, 8.0)]

    def test_clamp_before_nothing_stale(self):
        s = IntervalSet()
        s.add(5.0, 8.0)
        assert s.clamp_before(2.0) == 0.0

    def test_slice_oldest(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.add(5.0, 9.0)
        window = s.slice_oldest(3.0)
        assert window.pieces == ((0.0, 2.0), (5.0, 6.0))

    def test_slice_youngest(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        s.add(5.0, 9.0)
        window = s.slice_youngest(3.0)
        assert window.pieces == ((6.0, 9.0),)

    def test_slice_offset(self):
        s = IntervalSet()
        s.add(0.0, 10.0)
        window = s.slice_offset(2.0, 3.0)
        assert window.pieces == ((2.0, 5.0),)

    def test_slice_longer_than_backlog_clips(self):
        s = IntervalSet()
        s.add(0.0, 2.0)
        assert s.slice_oldest(100.0).measure == pytest.approx(2.0)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "sub"]),
                st.floats(0.0, 100.0),
                st.floats(0.1, 20.0),
            ),
            max_size=40,
        )
    )
    def test_invariants_under_random_ops(self, ops):
        """Intervals stay sorted, disjoint, positive-length."""
        s = IntervalSet()
        for op, lo, width in ops:
            if op == "add":
                s.add(lo, lo + width)
            else:
                s.subtract(lo, lo + width)
            intervals = s.intervals()
            for a, b in intervals:
                assert b > a
            for (a1, b1), (a2, b2) in zip(intervals, intervals[1:]):
                assert b1 < a2 + 1e-9
            assert s.measure >= 0.0

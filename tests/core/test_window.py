"""Tests for the windowing-process state machine."""

import numpy as np
import pytest

from repro.core import ChannelFeedback, Span, WindowingProcess

IDLE = ChannelFeedback.IDLE
SUCCESS = ChannelFeedback.SUCCESS
COLLISION = ChannelFeedback.COLLISION


def window(lo=0.0, hi=8.0):
    return Span(((lo, hi),))


class TestConstruction:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            WindowingProcess(Span(()))

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            WindowingProcess(window(), split="zigzag")

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            WindowingProcess(window(), arity=1)

    def test_random_split_needs_rng(self):
        with pytest.raises(ValueError):
            WindowingProcess(window(), split="random")


class TestBinaryProtocol:
    def test_empty_initial_window(self):
        process = WindowingProcess(window())
        process.on_feedback(IDLE)
        assert process.done
        assert not process.transmission_started
        assert process.slots_spent == 1
        assert process.resolved_spans == [window()]

    def test_immediate_success(self):
        process = WindowingProcess(window())
        process.on_feedback(SUCCESS)
        assert process.done
        assert process.transmission_started
        assert process.slots_spent == 0
        assert process.resolved_spans == [window()]

    def test_collision_splits_older_first(self):
        process = WindowingProcess(window(0.0, 8.0), split="older")
        process.on_feedback(COLLISION)
        assert process.current_span.pieces == ((0.0, 4.0),)

    def test_collision_splits_newer_first(self):
        process = WindowingProcess(window(0.0, 8.0), split="newer")
        process.on_feedback(COLLISION)
        assert process.current_span.pieces == ((4.0, 8.0),)

    def test_idle_half_hands_over_and_splits_sibling(self):
        """collision → older half idle → newer half (known >= 2) is split
        immediately: the next examined span is its older half."""
        process = WindowingProcess(window(0.0, 8.0), split="older")
        process.on_feedback(COLLISION)  # examine [0,4]
        process.on_feedback(IDLE)  # [0,4] empty -> [4,8] split at once
        assert process.current_span.pieces == ((4.0, 6.0),)
        assert process.slots_spent == 2

    def test_full_resolution_sequence(self):
        """collision, collision, success: the classic figure-1 walk."""
        process = WindowingProcess(window(0.0, 8.0), split="older")
        process.on_feedback(COLLISION)  # [0,8] -> examine [0,4]
        process.on_feedback(COLLISION)  # [0,4] -> examine [0,2]
        process.on_feedback(SUCCESS)  # one station in [0,2]
        assert process.done
        assert process.transmission_started
        assert process.slots_spent == 2
        resolved = [span.pieces for span in process.resolved_spans]
        assert resolved == [((0.0, 2.0),)]

    def test_feedback_after_done_rejected(self):
        process = WindowingProcess(window())
        process.on_feedback(SUCCESS)
        with pytest.raises(RuntimeError):
            process.on_feedback(IDLE)

    def test_resolved_spans_accumulate_idle_pieces(self):
        process = WindowingProcess(window(0.0, 8.0), split="older")
        process.on_feedback(COLLISION)  # examine [0,4]
        process.on_feedback(IDLE)  # [0,4] resolved; split [4,8], examine [4,6]
        process.on_feedback(SUCCESS)  # success in [4,6]
        total = sum(span.measure for span in process.resolved_spans)
        assert total == pytest.approx(6.0)

    def test_random_split_with_rng(self):
        rng = np.random.default_rng(0)
        process = WindowingProcess(window(0.0, 8.0), split="random", rng=rng)
        process.on_feedback(COLLISION)
        assert process.current_span.measure == pytest.approx(4.0)

    def test_max_depth_raises(self):
        process = WindowingProcess(window(0.0, 1.0))
        with pytest.raises(RuntimeError, match="indistinguishable"):
            for _ in range(100):
                process.on_feedback(COLLISION)


class TestKAryProtocol:
    def test_ternary_split_sizes(self):
        process = WindowingProcess(window(0.0, 9.0), arity=3)
        process.on_feedback(COLLISION)
        assert process.current_span.pieces == ((0.0, 3.0),)

    def test_ternary_idle_moves_to_next_sibling(self):
        process = WindowingProcess(window(0.0, 9.0), arity=3)
        process.on_feedback(COLLISION)  # examine [0,3]
        process.on_feedback(IDLE)  # move to [3,6] (not split: 2 siblings left)
        assert process.current_span.pieces == ((3.0, 6.0),)

    def test_ternary_last_sibling_split_immediately(self):
        process = WindowingProcess(window(0.0, 9.0), arity=3)
        process.on_feedback(COLLISION)  # examine [0,3]
        process.on_feedback(IDLE)  # examine [3,6]
        process.on_feedback(IDLE)  # [6,9] known >= 2: split immediately
        assert process.current_span.pieces == ((6.0, 7.0),)

    def test_collision_abandons_remaining_siblings(self):
        process = WindowingProcess(window(0.0, 9.0), arity=3)
        process.on_feedback(COLLISION)  # examine [0,3]
        process.on_feedback(COLLISION)  # recurse into [0,3]; [3,9] abandoned
        process.on_feedback(SUCCESS)  # success in [0,1]
        total_resolved = sum(span.measure for span in process.resolved_spans)
        assert total_resolved == pytest.approx(1.0)  # only the success span

"""Tests for the fault taxonomy (:mod:`repro.faults.model`)."""

import numpy as np
import pytest

from repro.core.window import ChannelFeedback
from repro.faults import FaultModel, FaultTelemetry


class TestValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(p_idle_as_collision=1.5)
        with pytest.raises(ValueError):
            FaultModel(p_success_as_collision=-0.1)

    def test_collision_confusions_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            FaultModel(p_collision_as_idle=0.6, p_collision_as_success=0.6)

    def test_observation_mode(self):
        with pytest.raises(ValueError):
            FaultModel(observation="telepathy")
        FaultModel(observation="broadcast")

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(crash_rate=-1e-3)
        with pytest.raises(ValueError):
            FaultModel(deaf_rate=-1e-3)

    def test_resync_parameters(self):
        with pytest.raises(ValueError):
            FaultModel(resync_horizon=0.0)
        with pytest.raises(ValueError):
            FaultModel(resync_timeout_slots=-5.0)
        with pytest.raises(ValueError):
            FaultModel(max_split_depth=0)

    def test_feedback_noise_bounds(self):
        with pytest.raises(ValueError):
            FaultModel.feedback_noise(0.6)
        model = FaultModel.feedback_noise(0.05)
        assert model.p_idle_as_collision == 0.05
        assert model.p_collision_as_idle == 0.05


class TestQueries:
    def test_null_model(self):
        model = FaultModel.none()
        assert model.is_null
        assert not model.has_channel_noise
        assert not model.has_station_faults

    def test_channel_noise_flag(self):
        assert FaultModel(p_collision_as_success=0.01).has_channel_noise
        assert not FaultModel(crash_rate=0.01).has_channel_noise

    def test_station_fault_flag(self):
        assert FaultModel(crash_rate=0.01).has_station_faults
        assert FaultModel(deaf_rate=0.01).has_station_faults
        assert not FaultModel.feedback_noise(0.1).has_station_faults

    def test_confusion_targets(self):
        model = FaultModel.feedback_noise(0.1)
        ((p, target),) = model.confusion_for(ChannelFeedback.IDLE)
        assert (p, target) == (0.1, ChannelFeedback.COLLISION)
        targets = {t for _, t in model.confusion_for(ChannelFeedback.COLLISION)}
        assert targets == {ChannelFeedback.IDLE, ChannelFeedback.SUCCESS}


class TestCorrupt:
    def test_null_model_never_draws(self):
        model = FaultModel.none()
        rng = np.random.default_rng(0)
        before = repr(rng.bit_generator.state)
        for symbol in ChannelFeedback:
            assert model.corrupt(symbol, rng) is symbol
        assert repr(rng.bit_generator.state) == before

    def test_certain_confusion(self):
        model = FaultModel(p_idle_as_collision=1.0)
        rng = np.random.default_rng(0)
        assert model.corrupt(ChannelFeedback.IDLE, rng) is ChannelFeedback.COLLISION
        # SUCCESS has no confusion configured: passes through, no draw.
        before = repr(rng.bit_generator.state)
        assert model.corrupt(ChannelFeedback.SUCCESS, rng) is ChannelFeedback.SUCCESS
        assert repr(rng.bit_generator.state) == before


class TestTelemetry:
    def test_summary_mentions_counters(self):
        t = FaultTelemetry(resyncs=3, cohort_splits=7)
        text = t.summary()
        assert "resyncs=3" in text
        assert "splits=7" in text

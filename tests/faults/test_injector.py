"""Tests for the event-driven fault source (:mod:`repro.faults.injector`)."""

import numpy as np

from repro.core.window import ChannelFeedback
from repro.faults import FaultEvent, FaultInjector, FaultModel, StationHealth


def make(model, n_stations=10, seed=0):
    return FaultInjector(model, n_stations, np.random.default_rng(seed))


class TestHealth:
    def test_null_model_never_fires(self):
        injector = make(FaultModel.none())
        assert injector.poll(1e9) == []
        assert not injector.any_down
        assert all(injector.is_up(s) for s in range(10))

    def test_crash_then_restart(self):
        injector = make(FaultModel(crash_rate=0.01, mean_downtime=50.0), seed=3)
        crashed = set()
        restarted = set()
        for now in range(0, 20_000, 10):
            for event, station in injector.poll(float(now)):
                if event is FaultEvent.CRASH:
                    crashed.add(station)
                    assert injector.is_crashed(station)
                elif event is FaultEvent.RESTART:
                    restarted.add(station)
                    assert injector.is_up(station)
        assert crashed, "crash hazard never fired over 20k slots"
        assert restarted <= crashed | restarted
        # Counter consistency: down count equals non-UP stations.
        down = sum(
            1 for s in range(injector.n_stations) if not injector.is_up(s)
        )
        assert injector.any_down == (down > 0)

    def test_deaf_then_hear(self):
        injector = make(FaultModel(deaf_rate=0.01, mean_deaf_slots=20.0), seed=5)
        events = []
        for now in range(0, 20_000, 10):
            events.extend(injector.poll(float(now)))
        kinds = {event for event, _ in events}
        assert FaultEvent.DEAF in kinds
        assert FaultEvent.HEAR in kinds

    def test_events_reported_in_time_order(self):
        injector = make(
            FaultModel(crash_rate=0.05, mean_downtime=10.0, deaf_rate=0.05),
            seed=7,
        )
        applied = injector.poll(5_000.0)
        assert len(applied) > 0  # plenty due after a long jump


class TestObservation:
    def test_no_confusion_is_draw_free(self):
        injector = make(FaultModel.none())
        before = repr(injector.rng.bit_generator.state)
        symbols = injector.observe(ChannelFeedback.COLLISION, 8)
        assert symbols == [ChannelFeedback.COLLISION] * 8
        assert repr(injector.rng.bit_generator.state) == before

    def test_certain_confusion_flips_everyone(self):
        injector = make(FaultModel(p_idle_as_collision=1.0))
        symbols = injector.observe(ChannelFeedback.IDLE, 5)
        assert symbols == [ChannelFeedback.COLLISION] * 5

    def test_partial_confusion_mixes(self):
        injector = make(FaultModel(p_success_as_collision=0.5), seed=1)
        symbols = injector.observe(ChannelFeedback.SUCCESS, 200)
        kinds = set(symbols)
        assert kinds == {ChannelFeedback.SUCCESS, ChannelFeedback.COLLISION}

    def test_broadcast_observation(self):
        injector = make(FaultModel(p_collision_as_success=1.0))
        assert (
            injector.observe_broadcast(ChannelFeedback.COLLISION)
            is ChannelFeedback.SUCCESS
        )

    def test_hearing_excludes_unhealthy(self):
        injector = make(FaultModel.none())
        injector.health[3] = StationHealth.CRASHED
        injector.health[5] = StationHealth.DEAF
        assert injector.hearing(range(8)) == [0, 1, 2, 4, 6, 7]

"""Tests for the common-mode feedback fault family
(:mod:`repro.faults.feedback`)."""

import math

import numpy as np
import pytest

from repro.core.window import ChannelFeedback
from repro.faults import (
    RECOVERY_POLICIES,
    FaultModel,
    FeedbackFaultModel,
    FeedbackFaultState,
)


class TestValidation:
    """Every field fails at construction with an error naming it."""

    @pytest.mark.parametrize(
        "field", ["p_collision_as_success", "p_success_as_idle", "p_erasure"]
    )
    def test_probability_bounds_name_the_field(self, field):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match=field):
                FeedbackFaultModel(**{field: bad})

    def test_erasure_budget_shared_with_capture(self):
        with pytest.raises(ValueError, match="p_collision_as_success"):
            FeedbackFaultModel(p_erasure=0.6, p_collision_as_success=0.6)
        with pytest.raises(ValueError, match="p_success_as_idle"):
            FeedbackFaultModel(p_erasure=0.6, p_success_as_idle=0.6)
        # Disjoint budgets are fine at their extremes.
        FeedbackFaultModel(p_erasure=0.5, p_collision_as_success=0.5)

    @pytest.mark.parametrize("field", ["miss_rate", "jam_rate"])
    def test_negative_rates_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            FeedbackFaultModel(**{field: -1e-4})

    def test_mean_jam_slots_positive(self):
        with pytest.raises(ValueError, match="mean_jam_slots"):
            FeedbackFaultModel(mean_jam_slots=0.0)

    def test_recovery_policy_names(self):
        with pytest.raises(ValueError, match="recovery"):
            FeedbackFaultModel(recovery="pray")
        for policy in RECOVERY_POLICIES:
            FeedbackFaultModel(recovery=policy)

    def test_rejoin_listen_slots_whole_and_nonnegative(self):
        with pytest.raises(ValueError, match="rejoin_listen_slots"):
            FeedbackFaultModel(rejoin_listen_slots=-1.0)
        with pytest.raises(ValueError, match="rejoin_listen_slots"):
            FeedbackFaultModel(rejoin_listen_slots=2.5)
        FeedbackFaultModel(rejoin_listen_slots=0.0)

    def test_max_split_depth_bounds(self):
        with pytest.raises(ValueError, match="max_split_depth"):
            FeedbackFaultModel(max_split_depth=0)
        with pytest.raises(ValueError, match="max_split_depth"):
            # 60 would collide with WindowingProcess's own depth error.
            FeedbackFaultModel(max_split_depth=60)
        FeedbackFaultModel(max_split_depth=59)

    def test_legacy_recovery_field_validated_too(self):
        with pytest.raises(ValueError, match="recovery"):
            FaultModel(recovery="pray")
        for policy in RECOVERY_POLICIES:
            FaultModel(recovery=policy)

    def test_noise_factory_bounds(self):
        with pytest.raises(ValueError):
            FeedbackFaultModel.noise(0.6)
        model = FeedbackFaultModel.noise(0.05, recovery="gated-rejoin")
        assert model.p_erasure == 0.05
        assert model.p_collision_as_success == 0.05
        assert model.p_success_as_idle == 0.05
        assert model.recovery == "gated-rejoin"


class TestQueries:
    def test_null_model(self):
        model = FeedbackFaultModel.none()
        assert model.is_null
        assert not model.has_noise
        assert not model.has_events

    def test_noise_flag(self):
        assert FeedbackFaultModel(p_erasure=0.01).has_noise
        assert not FeedbackFaultModel(jam_rate=0.01).has_noise

    def test_event_flag(self):
        assert FeedbackFaultModel(miss_rate=0.01).has_events
        assert FeedbackFaultModel(jam_rate=0.01).has_events
        assert not FeedbackFaultModel.noise(0.1).has_events


class TestObserve:
    def _state(self, model, seed=0, n_stations=4):
        return FeedbackFaultState(
            model, n_stations, np.random.default_rng(seed)
        )

    def test_null_model_never_draws(self):
        state = self._state(FeedbackFaultModel.none())
        before = repr(state.rng.bit_generator.state)
        for symbol in ChannelFeedback:
            assert state.observe(symbol) is symbol
        assert repr(state.rng.bit_generator.state) == before

    def test_one_draw_per_slot_with_noise(self):
        state = self._state(FeedbackFaultModel.noise(0.1))
        mirror = np.random.default_rng(0)
        for symbol in (
            ChannelFeedback.IDLE,
            ChannelFeedback.SUCCESS,
            ChannelFeedback.COLLISION,
        ):
            state.observe(symbol)
            mirror.random()
        assert repr(state.rng.bit_generator.state) == repr(
            mirror.bit_generator.state
        )

    def test_certain_erasure(self):
        state = self._state(FeedbackFaultModel(p_erasure=1.0))
        for symbol in ChannelFeedback:
            assert state.observe(symbol) is ChannelFeedback.COLLISION
        # IDLE/SUCCESS corruptions counted, COLLISION->COLLISION not.
        assert state.telemetry.corrupted_observations == 2

    def test_certain_capture_and_fade(self):
        state = self._state(
            FeedbackFaultModel(p_collision_as_success=1.0, p_success_as_idle=1.0)
        )
        assert state.observe(ChannelFeedback.COLLISION) is ChannelFeedback.SUCCESS
        assert state.observe(ChannelFeedback.SUCCESS) is ChannelFeedback.IDLE
        assert state.observe(ChannelFeedback.IDLE) is ChannelFeedback.IDLE

    def test_determinism_given_seed(self):
        model = FeedbackFaultModel.noise(0.3)
        a, b = self._state(model, seed=9), self._state(model, seed=9)
        seq = [ChannelFeedback.SUCCESS, ChannelFeedback.COLLISION] * 50
        assert [a.observe(s) for s in seq] == [b.observe(s) for s in seq]


class TestEvents:
    def _state(self, model, seed=0, n_stations=4):
        return FeedbackFaultState(
            model, n_stations, np.random.default_rng(seed)
        )

    def test_poll_is_idempotent_at_an_instant(self):
        state = self._state(FeedbackFaultModel(miss_rate=0.5), seed=3)
        state.poll(10.0)
        before = repr(state.rng.bit_generator.state)
        desynced = dict(state.desynced)
        assert state.poll(10.0) == []
        assert repr(state.rng.bit_generator.state) == before
        assert state.desynced == desynced

    def test_miss_desyncs_until_epoch_rejoin(self):
        state = self._state(FeedbackFaultModel(miss_rate=0.5))
        state.poll(50.0)
        assert state.desynced
        assert state.telemetry.missed_feedback == len(state.desynced)
        station, (rejoin_at, missed_at) = next(iter(state.desynced.items()))
        # reset-to-epoch: eligible to rejoin immediately at the next epoch.
        assert rejoin_at == missed_at
        state.rejoin(60.0)
        assert station not in state.desynced
        assert state.telemetry.resyncs >= 1
        assert state.telemetry.diverged_slots > 0

    def test_gated_rejoin_waits_out_the_listen_window(self):
        model = FeedbackFaultModel(
            miss_rate=0.5, recovery="gated-rejoin", rejoin_listen_slots=16.0
        )
        state = self._state(model)
        state.poll(50.0)
        assert state.desynced
        for rejoin_at, missed_at in state.desynced.values():
            assert rejoin_at == missed_at + 16.0
        first = min(r for r, _ in state.desynced.values())
        last = max(r for r, _ in state.desynced.values())
        state.rejoin(first - 1.0)
        assert state.desynced  # everyone still listening
        state.rejoin(last)
        assert not state.desynced

    def test_drop_out_reports_the_station(self):
        state = self._state(
            FeedbackFaultModel(miss_rate=0.5, recovery="drop-out")
        )
        dropped = state.poll(50.0)
        assert dropped
        assert all(s in state.desynced for s in dropped)

    def test_jam_covers_a_burst_and_reschedules(self):
        state = self._state(FeedbackFaultModel(jam_rate=0.05), seed=1)
        horizon = 10_000.0
        jammed = 0
        now = 0.0
        while now < horizon:
            state.poll(now)
            if state.jammed(now):
                jammed += 1
            now += 1.0
        assert state.telemetry.jam_bursts > 1
        assert jammed > state.telemetry.jam_bursts  # bursts last > 1 slot
        assert math.isfinite(state.jam_until)

    def test_event_schedule_deterministic_given_seed(self):
        model = FeedbackFaultModel(miss_rate=0.01, jam_rate=0.005)
        a, b = self._state(model, seed=11), self._state(model, seed=11)
        for now in range(0, 2000, 7):
            assert a.poll(float(now)) == b.poll(float(now))
            assert a.jam_until == b.jam_until
            assert a.desynced == b.desynced

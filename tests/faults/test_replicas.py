"""Tests for the replica bank and the fault-injected simulator path.

The headline regression: driving a simulation through the per-station
replica machinery with a null fault model must reproduce the shared
controller's results **bit for bit**, for every protocol including the
stochastic ones.
"""

import pytest

from repro.core import ControlPolicy
from repro.des.rng import RandomStreams
from repro.faults import FaultModel
from repro.mac.simulator import WindowMACSimulator

RHO = 0.5
M = 25
LAM = RHO / M
K = 75.0

FACTORIES = {
    "controlled": lambda: ControlPolicy.optimal(K, LAM),
    "fcfs": lambda: ControlPolicy.uncontrolled_fcfs(LAM),
    "lcfs": lambda: ControlPolicy.uncontrolled_lcfs(LAM),
    "random": lambda: ControlPolicy.uncontrolled_random(LAM),
}


def run(policy, fault_model=None, seed=11, horizon=6_000.0, streams=None):
    simulator = WindowMACSimulator(
        policy,
        arrival_rate=LAM,
        transmission_slots=M,
        n_stations=50,
        deadline=K,
        seed=seed,
        fault_model=fault_model,
        streams=streams,
    )
    return simulator.run(horizon, warmup_slots=500.0)


class TestZeroFaultBitIdentity:
    @pytest.mark.parametrize("protocol", sorted(FACTORIES))
    def test_replica_path_reproduces_shared_path(self, protocol):
        factory = FACTORIES[protocol]
        shared = run(factory())
        replicated = run(factory(), fault_model=FaultModel.none())
        # Frozen-dataclass equality covers every count, both waiting-time
        # definitions and the full slot breakdown (telemetry is excluded
        # from comparison by design).
        assert replicated == shared

    def test_streams_variant_is_also_identical(self):
        streams = lambda: RandomStreams(4)  # noqa: E731
        shared = run(FACTORIES["controlled"](), streams=streams())
        replicated = run(
            FACTORIES["controlled"](),
            fault_model=FaultModel.none(),
            streams=streams(),
        )
        assert replicated == shared

    def test_null_model_stays_one_cohort(self):
        result = run(FACTORIES["controlled"](), fault_model=FaultModel.none())
        t = result.faults
        assert t.peak_cohorts == 1
        assert t.cohort_splits == 0
        assert t.resyncs == 0
        assert t.corrupted_observations == 0
        assert result.lost_to_faults == 0


class TestFeedbackNoise:
    def test_cohorts_split_and_remerge(self):
        result = run(
            FACTORIES["controlled"](),
            fault_model=FaultModel.feedback_noise(0.02),
            horizon=15_000.0,
        )
        t = result.faults
        assert t.corrupted_observations > 0
        assert t.cohort_splits > 0
        assert t.cohort_merges > 0
        assert t.peak_cohorts > 1
        # Divergence is detected and repaired, not accumulated: merges
        # (plus resync-driven resets) keep pace with splits.
        assert t.cohort_merges + t.resyncs >= 0.5 * t.cohort_splits
        assert 0.0 <= result.loss_fraction <= 1.0

    def test_noise_does_not_deadlock_uncontrolled(self):
        # No element 4 here, so recovery leans on the fault-model resync
        # horizon rather than the policy's discard deadline.
        result = run(
            FACTORIES["fcfs"](),
            fault_model=FaultModel.feedback_noise(0.02),
            horizon=10_000.0,
        )
        assert result.faults.resyncs >= 0
        assert result.arrivals > 0

    def test_broadcast_corruption_never_splits(self):
        result = run(
            FACTORIES["controlled"](),
            fault_model=FaultModel.feedback_noise(0.02, observation="broadcast"),
            horizon=10_000.0,
        )
        t = result.faults
        # Everyone mis-hears identically: replicas drift from the *truth*
        # but never from each other.
        assert t.cohort_splits == 0
        assert t.peak_cohorts == 1
        assert t.corrupted_observations > 0

    def test_capture_effect_causes_silent_loss(self):
        model = FaultModel(p_collision_as_success=0.4, observation="broadcast")
        result = run(
            FACTORIES["controlled"](),
            fault_model=model,
            horizon=15_000.0,
        )
        t = result.faults
        assert t.phantom_deliveries > 0
        assert result.lost_to_faults > 0


class TestStationFailures:
    def test_crash_restart_runs_to_completion(self):
        model = FaultModel(crash_rate=1e-3, mean_downtime=200.0)
        result = run(
            FACTORIES["controlled"](), fault_model=model, horizon=15_000.0
        )
        t = result.faults
        assert t.crashes > 0
        assert t.restarts > 0
        # Every restart boots a resync cohort.
        assert t.resyncs >= t.restarts
        assert result.lost_to_faults > 0  # crashed backlogs / arrivals
        assert result.arrivals == (
            result.delivered_on_time
            + result.delivered_late
            + result.discarded
            + result.lost_to_faults
            + result.unresolved
        )

    def test_deafness_recovers(self):
        model = FaultModel(deaf_rate=1e-3, mean_deaf_slots=60.0)
        result = run(
            FACTORIES["controlled"](), fault_model=model, horizon=15_000.0
        )
        t = result.faults
        assert t.deaf_events > 0
        assert t.deaf_recoveries > 0
        assert t.resyncs >= t.deaf_recoveries

    def test_combined_faults_complete(self):
        model = FaultModel(
            p_idle_as_collision=0.01,
            p_collision_as_idle=0.01,
            p_success_as_collision=0.01,
            p_collision_as_success=0.01,
            crash_rate=5e-4,
            mean_downtime=150.0,
            deaf_rate=5e-4,
            mean_deaf_slots=50.0,
        )
        result = run(
            FACTORIES["controlled"](), fault_model=model, horizon=15_000.0
        )
        assert 0.0 <= result.loss_fraction <= 1.0
        assert result.faults.peak_cohorts <= 50


class TestResultAccounting:
    def test_loss_fraction_guards_zero_denominator(self):
        from repro.mac.simulator import MACSimResult
        from repro.mac.channel import ChannelStats
        import math

        empty = MACSimResult(
            arrivals=0,
            delivered_on_time=0,
            delivered_late=0,
            discarded=0,
            unresolved=0,
            mean_true_wait=float("nan"),
            mean_paper_wait=float("nan"),
            channel=ChannelStats(),
            deadline=None,
        )
        assert math.isnan(empty.loss_fraction)
        assert math.isnan(empty.loss_stderr())
        assert not empty.saturated

    def test_saturated_flag(self):
        from repro.mac.simulator import MACSimResult
        from repro.mac.channel import ChannelStats

        result = MACSimResult(
            arrivals=100,
            delivered_on_time=50,
            delivered_late=0,
            discarded=0,
            unresolved=50,
            mean_true_wait=1.0,
            mean_paper_wait=1.0,
            channel=ChannelStats(),
            deadline=10.0,
        )
        assert result.saturated
        ok = MACSimResult(
            arrivals=100,
            delivered_on_time=95,
            delivered_late=0,
            discarded=0,
            unresolved=5,
            mean_true_wait=1.0,
            mean_paper_wait=1.0,
            channel=ChannelStats(),
            deadline=10.0,
        )
        assert not ok.saturated

"""Tests for the true-waiting-time correction."""

import pytest

from repro.core import ControlPolicy
from repro.crp import ExactSchedulingModel, optimal_window_occupancy
from repro.mac import WindowMACSimulator
from repro.queueing import true_wait_correction


def scheduling_pmf(m=25):
    return ExactSchedulingModel(m, optimal_window_occupancy()).scheduling_pmf()


class TestValidation:
    def test_invalid_transmission(self):
        with pytest.raises(ValueError):
            true_wait_correction(0.03, scheduling_pmf(), 0.0, 60.0)

    def test_empty_scheduling_rejected(self):
        from repro.queueing import LatticePMF
        import numpy as np

        empty = LatticePMF.__new__(LatticePMF)
        empty.p = np.zeros(3)
        empty.delta = 1.0
        with pytest.raises(ValueError):
            true_wait_correction(0.03, empty, 25.0, 60.0)


class TestStructure:
    def test_total_exceeds_sender_loss(self):
        c = true_wait_correction(0.03, scheduling_pmf(), 25.0, 60.0)
        assert c.total_loss >= c.sender_loss
        assert c.correction == pytest.approx(
            (1 - c.sender_loss) * c.late_given_accepted
        )

    def test_correction_shrinks_with_deadline(self):
        """The own-scheduling overhang matters less as K grows."""
        sched = scheduling_pmf()
        tight = true_wait_correction(0.03, sched, 25.0, 40.0)
        loose = true_wait_correction(0.03, sched, 25.0, 160.0)
        assert loose.late_given_accepted < tight.late_given_accepted

    def test_true_wait_distribution_proper(self):
        c = true_wait_correction(0.03, scheduling_pmf(), 25.0, 60.0)
        assert c.true_wait.p.sum() == pytest.approx(1.0, abs=1e-9)


class TestAgainstSimulation:
    def test_predicts_receiver_late_fraction(self):
        """The correction should explain the simulator's delivered-late
        counts for the controlled protocol (scored by true wait)."""
        lam, m, deadline = 0.03, 25, 60.0
        c = true_wait_correction(lam, scheduling_pmf(m), m, deadline)

        late = accepted = 0
        for seed in (1, 2, 3):
            sim = WindowMACSimulator(
                ControlPolicy.optimal(deadline, lam), lam, m,
                deadline=deadline, seed=seed,
            )
            result = sim.run(100_000.0, warmup_slots=12_000.0)
            late += result.delivered_late
            accepted += result.delivered_late + result.delivered_on_time
        observed = late / accepted
        assert observed == pytest.approx(
            c.late_given_accepted, rel=0.6, abs=0.01
        )

    def test_simulated_loss_bracketed_by_definitions(self):
        """The slot-level true-wait loss should fall between eq. 4.7
        (which ignores the message's own scheduling time) and the
        corrected prediction (which adds it in full, slightly
        over-counting because a discarded message can't also be late)."""
        lam, m, deadline = 0.03, 25, 40.0
        c = true_wait_correction(lam, scheduling_pmf(m), m, deadline)
        losses = []
        for seed in (1, 2, 3):
            sim = WindowMACSimulator(
                ControlPolicy.optimal(deadline, lam), lam, m,
                deadline=deadline, seed=seed,
            )
            losses.append(
                sim.run(100_000.0, warmup_slots=12_000.0).loss_fraction
            )
        mean_loss = sum(losses) / len(losses)
        assert c.sender_loss - 0.02 <= mean_loss <= c.total_loss + 0.02

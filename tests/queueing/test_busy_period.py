"""Tests for the discrete M/G/1 busy-period computation."""

import numpy as np
import pytest

from repro.queueing import (
    busy_period_pmf,
    delay_busy_period_pmf,
    deterministic_pmf,
    geometric_pmf,
)


class TestBusyPeriod:
    def test_service_mass_at_zero_rejected(self):
        from repro.queueing import LatticePMF

        with pytest.raises(ValueError):
            busy_period_pmf(LatticePMF([0.3, 0.7]), 0.1, horizon=50.0)

    def test_zero_arrivals_busy_period_is_service(self):
        service = deterministic_pmf(5.0)
        bp = busy_period_pmf(service, arrival_rate=0.0, horizon=50.0)
        assert bp.p[5] == pytest.approx(1.0)
        assert bp.p.sum() == pytest.approx(1.0)

    def test_mean_matches_closed_form(self):
        """E[busy period] = x̄ / (1 − ρ)."""
        service = deterministic_pmf(4.0)
        lam = 0.1  # rho = 0.4
        bp = busy_period_pmf(service, lam, horizon=3000.0, tol=1e-12)
        mass = bp.p.sum()
        assert mass > 0.999  # horizon captures nearly everything
        mean = bp.mean() / mass
        # The slotted Bernoulli chain approximates the continuous formula.
        assert mean == pytest.approx(4.0 / (1.0 - 0.4), rel=0.05)

    def test_mass_within_horizon_increases(self):
        service = deterministic_pmf(4.0)
        short = busy_period_pmf(service, 0.1, horizon=20.0)
        long = busy_period_pmf(service, 0.1, horizon=200.0)
        assert long.p.sum() >= short.p.sum()

    def test_busy_period_no_shorter_than_service(self):
        service = deterministic_pmf(6.0)
        bp = busy_period_pmf(service, 0.05, horizon=100.0)
        assert np.all(bp.p[:6] == 0.0)

    def test_heavier_load_longer_busy_period(self):
        service = deterministic_pmf(4.0)
        light = busy_period_pmf(service, 0.02, horizon=2000.0)
        heavy = busy_period_pmf(service, 0.15, horizon=2000.0)
        assert heavy.mean() / heavy.p.sum() > light.mean() / light.p.sum()


class TestDelayBusyPeriod:
    def test_delta_mismatch_rejected(self):
        with pytest.raises(ValueError):
            delay_busy_period_pmf(
                deterministic_pmf(2.0, delta=0.5),
                deterministic_pmf(4.0, delta=1.0),
                0.1,
                horizon=50.0,
            )

    def test_zero_initial_delay_is_instant(self):
        from repro.queueing import LatticePMF

        initial = LatticePMF([1.0])  # all mass at zero
        out = delay_busy_period_pmf(initial, deterministic_pmf(4.0), 0.1, horizon=50.0)
        assert out.p[0] == pytest.approx(1.0)

    def test_no_arrivals_reduces_to_initial_delay(self):
        initial = deterministic_pmf(7.0)
        out = delay_busy_period_pmf(initial, deterministic_pmf(4.0), 0.0, horizon=50.0)
        assert out.p[7] == pytest.approx(1.0)

    def test_mean_matches_delay_cycle_formula(self):
        """E[delay busy period] = E[R] / (1 − ρ)."""
        service = deterministic_pmf(4.0)
        lam = 0.1
        initial = geometric_pmf(3.0, start=1.0)
        out = delay_busy_period_pmf(initial, service, lam, horizon=4000.0)
        mass = out.p.sum()
        assert mass > 0.995
        assert out.mean() / mass == pytest.approx(3.0 / (1 - 0.4), rel=0.06)

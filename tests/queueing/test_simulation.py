"""Tests for the Monte-Carlo queue simulators."""

import numpy as np
import pytest

from repro.queueing import (
    MG1,
    ImpatientMG1,
    deterministic_pmf,
    geometric_pmf,
    simulate_impatient_mg1,
    simulate_mg1_waits,
)


class TestImpatientSim:
    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_impatient_mg1(0.0, deterministic_pmf(5.0), 10.0, 100, rng)
        with pytest.raises(ValueError):
            simulate_impatient_mg1(0.1, deterministic_pmf(5.0), 10.0, 0, rng)

    def test_callable_sampler_supported(self, rng):
        result = simulate_impatient_mg1(
            0.05,
            lambda rng, size: np.full(size, 10.0),
            30.0,
            20_000,
            rng,
        )
        assert 0.0 <= result.loss_probability <= 1.0

    def test_unsupported_sampler_rejected(self, rng):
        with pytest.raises(TypeError):
            simulate_impatient_mg1(0.05, object(), 30.0, 100, rng)

    def test_huge_deadline_never_loses(self, rng):
        result = simulate_impatient_mg1(
            0.05, deterministic_pmf(10.0), 1e9, 20_000, rng
        )
        assert result.loss_probability == 0.0

    def test_matches_series_solver(self, rng):
        lam, m, K = 0.03, 25.0, 60.0
        sim = simulate_impatient_mg1(lam, deterministic_pmf(m), K, 400_000, rng)
        analytic = ImpatientMG1(lam, deterministic_pmf(m).refine(4), K).solve()
        assert sim.loss_probability == pytest.approx(
            analytic.loss_probability, rel=0.08
        )

    def test_stderr_reasonable(self, rng):
        result = simulate_impatient_mg1(
            0.05, deterministic_pmf(10.0), 20.0, 50_000, rng
        )
        assert 0 < result.loss_stderr() < 0.01

    def test_counts_add_up(self, rng):
        result = simulate_impatient_mg1(
            0.08, deterministic_pmf(10.0), 15.0, 30_000, rng
        )
        assert result.n_lost <= result.n_customers
        assert result.loss_probability == pytest.approx(
            result.n_lost / result.n_customers
        )

    def test_accepted_wait_below_deadline(self, rng):
        K = 12.0
        result = simulate_impatient_mg1(
            0.08, deterministic_pmf(10.0), K, 30_000, rng
        )
        assert 0.0 <= result.mean_accepted_wait <= K


class TestWaitSim:
    def test_unknown_discipline_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_mg1_waits(0.05, deterministic_pmf(10.0), 100, rng, "siro")

    def test_fcfs_mean_matches_pollaczek_khinchine(self, rng):
        lam = 0.05
        service = deterministic_pmf(10.0)
        sim = simulate_mg1_waits(lam, service, 300_000, rng, "fcfs")
        assert sim.mean_wait == pytest.approx(MG1(lam, service).mean_wait(), rel=0.05)

    def test_lcfs_mean_matches_fcfs_mean(self, rng):
        """Work conservation in the simulator itself."""
        lam = 0.06
        service = geometric_pmf(8.0, start=1.0)
        fcfs = simulate_mg1_waits(lam, service, 200_000, rng, "fcfs")
        lcfs = simulate_mg1_waits(
            lam, service, 200_000, np.random.default_rng(999), "lcfs"
        )
        assert fcfs.mean_wait == pytest.approx(lcfs.mean_wait, rel=0.08)

    def test_fcfs_tail_matches_benes_series(self, rng):
        lam = 0.05
        service = deterministic_pmf(10.0)
        sim = simulate_mg1_waits(lam, service, 300_000, rng, "fcfs")
        queue = MG1(lam, service)
        for t in (5.0, 20.0, 60.0):
            assert sim.fraction_late(t) == pytest.approx(
                queue.wait_survival_at(t), rel=0.1, abs=0.003
            )

    def test_max_queue_guard_triggers_when_unstable(self, rng):
        with pytest.raises(RuntimeError):
            simulate_mg1_waits(
                0.5,  # rho = 5: wildly unstable
                deterministic_pmf(10.0),
                50_000,
                rng,
                "fcfs",
                max_queue=1000,
            )

    def test_waits_nonnegative(self, rng):
        sim = simulate_mg1_waits(0.05, deterministic_pmf(10.0), 20_000, rng)
        assert np.all(sim.waits >= 0.0)

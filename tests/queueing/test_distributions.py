"""Unit and property tests for lattice distributions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing import (
    LatticePMF,
    deterministic_pmf,
    exponential_pmf,
    geometric_pmf,
    mixture,
    poisson_pmf,
    uniform_pmf,
)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LatticePMF([])

    def test_rejects_negative_mass(self):
        with pytest.raises(ValueError):
            LatticePMF([0.5, -0.1, 0.6])

    def test_rejects_supercritical_mass(self):
        with pytest.raises(ValueError):
            LatticePMF([0.7, 0.7])

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            LatticePMF([1.0], delta=0.0)

    def test_from_values(self):
        pmf = LatticePMF.from_values([2.0, 6.0], [0.25, 0.75], delta=2.0)
        assert pmf.mean() == pytest.approx(0.25 * 2 + 0.75 * 6)

    def test_from_values_off_lattice_rejected(self):
        with pytest.raises(ValueError):
            LatticePMF.from_values([1.5], [1.0], delta=1.0)

    def test_from_values_negative_rejected(self):
        with pytest.raises(ValueError):
            LatticePMF.from_values([-1.0], [1.0], delta=1.0)

    def test_from_values_length_mismatch(self):
        with pytest.raises(ValueError):
            LatticePMF.from_values([1.0], [0.5, 0.5])


class TestMoments:
    def test_deterministic_moments(self):
        pmf = deterministic_pmf(25.0)
        assert pmf.mean() == 25.0
        assert pmf.variance() == pytest.approx(0.0, abs=1e-9)
        assert pmf.moment(2) == pytest.approx(625.0)

    def test_geometric_mean_matches_request(self):
        for mean in (0.5, 1.47, 10.0):
            pmf = geometric_pmf(mean, start=0.0)
            assert pmf.mean() == pytest.approx(mean, rel=1e-6)

    def test_geometric_with_start_offset(self):
        pmf = geometric_pmf(5.0, start=2.0)
        assert pmf.mean() == pytest.approx(5.0, rel=1e-6)
        assert pmf.p[0] == 0.0 and pmf.p[1] == 0.0

    def test_geometric_mean_below_start_rejected(self):
        with pytest.raises(ValueError):
            geometric_pmf(1.0, start=2.0)

    def test_poisson_mean_and_variance(self):
        pmf = poisson_pmf(4.2)
        assert pmf.mean() == pytest.approx(4.2, rel=1e-9)
        assert pmf.variance() == pytest.approx(4.2, rel=1e-6)

    def test_poisson_zero(self):
        pmf = poisson_pmf(0.0)
        assert pmf.p[0] == 1.0

    def test_uniform_moments(self):
        pmf = uniform_pmf(2.0, 6.0, delta=1.0)
        assert pmf.mean() == pytest.approx(4.0)

    def test_exponential_mean_converges(self):
        pmf = exponential_pmf(10.0, delta=0.05)
        assert pmf.mean() == pytest.approx(10.0, rel=0.01)

    def test_moment_negative_order_rejected(self):
        with pytest.raises(ValueError):
            deterministic_pmf(1.0).moment(-1)


class TestCdf:
    def test_cdf_at_boundaries(self):
        pmf = LatticePMF([0.2, 0.3, 0.5])
        assert pmf.cdf_at(-1.0) == 0.0
        assert pmf.cdf_at(0.0) == pytest.approx(0.2)
        assert pmf.cdf_at(1.0) == pytest.approx(0.5)
        assert pmf.cdf_at(100.0) == pytest.approx(1.0)

    def test_sf_complements_cdf(self):
        pmf = LatticePMF([0.2, 0.3, 0.5])
        for x in (0.0, 1.0, 2.0, 5.0):
            assert pmf.sf_at(x) == pytest.approx(1.0 - pmf.cdf_at(x))

    def test_cdf_array_is_monotone(self):
        pmf = poisson_pmf(3.0)
        cdf = pmf.cdf()
        assert np.all(np.diff(cdf) >= -1e-15)


class TestTransforms:
    def test_convolution_of_deterministics(self):
        a = deterministic_pmf(3.0)
        b = deterministic_pmf(4.0)
        assert a.convolve(b).mean() == pytest.approx(7.0)

    def test_convolution_means_add(self):
        a = poisson_pmf(2.0)
        b = geometric_pmf(3.0)
        c = a.convolve(b)
        assert c.mean() == pytest.approx(a.mean() + b.mean(), rel=1e-6)

    def test_convolution_lattice_mismatch(self):
        with pytest.raises(ValueError):
            deterministic_pmf(1.0, delta=1.0).convolve(deterministic_pmf(1.0, delta=0.5))

    def test_convolution_truncation_keeps_prefix_exact(self):
        a = geometric_pmf(2.0)
        full = a.convolve(a)
        truncated = a.convolve(a, limit=5)
        assert np.allclose(full.p[:5], truncated.p)

    def test_shift(self):
        pmf = deterministic_pmf(2.0).shift(3.0)
        assert pmf.mean() == pytest.approx(5.0)

    def test_shift_off_lattice_rejected(self):
        with pytest.raises(ValueError):
            deterministic_pmf(2.0).shift(0.5)

    def test_shift_negative_rejected(self):
        with pytest.raises(ValueError):
            deterministic_pmf(2.0).shift(-1.0)

    def test_residual_of_deterministic_is_uniform(self):
        pmf = deterministic_pmf(4.0)
        residual = pmf.residual()
        assert np.allclose(residual.p, [0.25, 0.25, 0.25, 0.25])
        assert residual.p.sum() == pytest.approx(1.0)

    def test_residual_mean_formula(self):
        """E[residual] on the lattice equals Σ_j j·P(X>j)/E[X]·δ²."""
        pmf = poisson_pmf(3.0).shift(1.0)  # service >= 1
        residual = pmf.residual()
        assert residual.p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_residual_requires_positive_mean(self):
        with pytest.raises(ValueError):
            LatticePMF([1.0]).residual()

    def test_refine_preserves_values_exactly(self):
        pmf = LatticePMF([0.0, 0.5, 0.5])
        fine = pmf.refine(4)
        assert fine.delta == 0.25
        assert fine.mean() == pytest.approx(pmf.mean())
        assert fine.cdf_at(1.0) == pytest.approx(pmf.cdf_at(1.0))

    def test_refine_identity(self):
        pmf = poisson_pmf(2.0)
        assert np.allclose(pmf.refine(1).p, pmf.p)

    def test_refine_invalid_factor(self):
        with pytest.raises(ValueError):
            deterministic_pmf(1.0).refine(0)

    def test_rebin_inverse_of_refine(self):
        pmf = poisson_pmf(5.0)
        round_trip = pmf.refine(3).rebin(1.0)
        assert np.allclose(round_trip.p, pmf.p)

    def test_rebin_invalid_step(self):
        with pytest.raises(ValueError):
            poisson_pmf(1.0).rebin(0.3)

    def test_sample_distribution(self, rng):
        pmf = LatticePMF([0.5, 0.0, 0.5], delta=2.0)
        samples = pmf.sample(rng, size=20_000)
        assert set(np.unique(samples)) <= {0.0, 4.0}
        assert np.mean(samples) == pytest.approx(2.0, abs=0.1)

    def test_sample_truncated_rejected(self, rng):
        truncated = LatticePMF([0.5])  # half the mass missing
        with pytest.raises(ValueError):
            truncated.sample(rng)


class TestMixture:
    def test_mixture_mean(self):
        mix = mixture([deterministic_pmf(2.0), deterministic_pmf(10.0)], [0.75, 0.25])
        assert mix.mean() == pytest.approx(4.0)

    def test_mixture_weight_validation(self):
        with pytest.raises(ValueError):
            mixture([deterministic_pmf(1.0)], [0.5])

    def test_mixture_lattice_mismatch(self):
        with pytest.raises(ValueError):
            mixture(
                [deterministic_pmf(1.0, delta=1.0), deterministic_pmf(1.0, delta=0.5)],
                [0.5, 0.5],
            )

    def test_mixture_empty_rejected(self):
        with pytest.raises(ValueError):
            mixture([], [])


@given(
    probs=st.lists(st.floats(0.001, 1.0), min_size=1, max_size=30),
    delta=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
)
def test_normalised_pmf_properties(probs, delta):
    """Any normalised pmf: cdf ends at 1, mean within support, residual proper."""
    p = np.asarray(probs)
    p = p / p.sum()
    pmf = LatticePMF(p, delta=delta)
    assert pmf.cdf()[-1] == pytest.approx(1.0)
    assert 0.0 <= pmf.mean() <= pmf.support_max + 1e-12
    if pmf.mean() > 0:
        residual = pmf.residual()
        assert residual.p.sum() == pytest.approx(1.0, abs=1e-9)
        assert residual.delta == delta


@given(
    a_mean=st.floats(0.5, 20.0),
    b_mean=st.floats(0.5, 20.0),
)
def test_convolution_commutes(a_mean, b_mean):
    a = geometric_pmf(a_mean)
    b = geometric_pmf(b_mean)
    ab = a.convolve(b)
    ba = b.convolve(a)
    n = min(ab.p.size, ba.p.size)
    assert np.allclose(ab.p[:n], ba.p[:n])

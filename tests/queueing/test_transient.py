"""Tests for the transient workload evolution."""

import math

import numpy as np
import pytest

from repro.queueing import (
    deterministic_pmf,
    solve_workload_chain,
    transient_workload,
)


class TestValidation:
    def test_bad_service(self):
        from repro.queueing import LatticePMF

        with pytest.raises(ValueError):
            transient_workload(0.03, LatticePMF([0.5, 0.5]), 10.0, 100)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            transient_workload(0.03, deterministic_pmf(10.0), 10.0, 0)

    def test_bad_deadline(self):
        with pytest.raises(ValueError):
            transient_workload(0.03, deterministic_pmf(10.0), -1.0, 10)

    def test_bad_snapshot(self):
        with pytest.raises(ValueError):
            transient_workload(
                0.03, deterministic_pmf(10.0), 10.0, 10, snapshot_every=0
            )


class TestDynamics:
    def test_distribution_stays_normalised(self):
        result = transient_workload(
            0.03, deterministic_pmf(25.0), 60.0, 500, initial_workload=100.0
        )
        assert result.final_pi.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(result.final_pi >= -1e-12)

    def test_empty_start_low_initial_loss(self):
        result = transient_workload(0.03, deterministic_pmf(25.0), 60.0, 50)
        assert result.loss_probability[0] == 0.0

    def test_burst_start_high_initial_loss(self):
        result = transient_workload(
            0.03, deterministic_pmf(25.0), 60.0, 50, initial_workload=200.0
        )
        assert result.loss_probability[0] == 1.0

    def test_converges_to_stationary_chain(self):
        """The transient limit must agree with the stationary solver —
        two very different algorithms."""
        lam, m, deadline = 0.03, 25.0, 60.0
        service = deterministic_pmf(m)
        transient = transient_workload(
            lam, service, deadline, 6000, initial_workload=150.0
        )
        stationary = solve_workload_chain(lam, service, deadline)
        assert transient.loss_probability[-1] == pytest.approx(
            stationary.loss_probability, rel=1e-3
        )
        assert transient.mean_workload[-1] == pytest.approx(
            stationary.mean_workload, rel=1e-2
        )

    def test_convergence_from_both_sides(self):
        """Loss relaxes downward from a burst and upward from empty."""
        lam, m, deadline = 0.03, 25.0, 60.0
        service = deterministic_pmf(m)
        from_burst = transient_workload(
            lam, service, deadline, 4000, initial_workload=150.0
        )
        from_empty = transient_workload(lam, service, deadline, 4000)
        stationary = solve_workload_chain(lam, service, deadline).loss_probability
        assert from_burst.loss_probability[1] > stationary
        assert from_empty.loss_probability[1] < stationary
        assert from_burst.loss_probability[-1] == pytest.approx(
            from_empty.loss_probability[-1], rel=0.01
        )

    def test_settling_time_finite_and_ordered(self):
        lam, m, deadline = 0.03, 25.0, 60.0
        service = deterministic_pmf(m)
        stationary = solve_workload_chain(lam, service, deadline).loss_probability
        result = transient_workload(
            lam, service, deadline, 4000, initial_workload=150.0, snapshot_every=10
        )
        settle = result.settling_time(stationary, tolerance=0.2)
        assert math.isfinite(settle)
        assert settle > 0.0

    def test_settling_time_unreachable_is_inf(self):
        result = transient_workload(0.03, deterministic_pmf(25.0), 60.0, 10)
        assert result.settling_time(0.5, tolerance=0.01) == math.inf

    def test_initial_pi_override(self):
        pi0 = np.zeros(10)
        pi0[3] = 1.0
        result = transient_workload(
            0.03, deterministic_pmf(25.0), 60.0, 5, initial_pi=pi0
        )
        assert result.mean_workload[0] == pytest.approx(3.0)

"""Tests for classic M/G/1 results against closed forms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing import (
    MG1,
    deterministic_pmf,
    exponential_pmf,
    geometric_pmf,
    pollaczek_khinchine_wait,
)


class TestPollaczekKhinchine:
    def test_md1_mean_wait_closed_form(self):
        """M/D/1: W = ρ·x̄ / (2(1−ρ))."""
        service = deterministic_pmf(10.0)
        lam = 0.05  # rho = 0.5
        expected = 0.5 * 10.0 / (2 * (1 - 0.5))
        assert pollaczek_khinchine_wait(lam, service) == pytest.approx(expected)

    def test_mm1_mean_wait_closed_form(self):
        """M/M/1: W = ρ/(μ−λ)."""
        mean_service = 4.0
        lam = 0.15  # rho = 0.6
        service = exponential_pmf(mean_service, delta=0.02)
        expected = 0.6 / (1.0 / mean_service - lam)
        assert pollaczek_khinchine_wait(lam, service) == pytest.approx(expected, rel=0.01)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            pollaczek_khinchine_wait(0.2, deterministic_pmf(10.0))

    @given(rho=st.floats(0.05, 0.9))
    def test_md1_vs_mm1_wait_ratio(self, rho):
        """Deterministic service halves the waiting time of exponential."""
        mean_service = 8.0
        lam = rho / mean_service
        d_wait = pollaczek_khinchine_wait(lam, deterministic_pmf(mean_service))
        m_wait = pollaczek_khinchine_wait(
            lam, exponential_pmf(mean_service, delta=0.05)
        )
        assert d_wait == pytest.approx(m_wait / 2, rel=0.05)


class TestMG1Queue:
    def test_rho_property(self):
        queue = MG1(0.04, deterministic_pmf(10.0))
        assert queue.rho == pytest.approx(0.4)

    def test_utilization_unstable_raises(self):
        with pytest.raises(ValueError):
            MG1(0.2, deterministic_pmf(10.0)).utilization

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            MG1(-0.1, deterministic_pmf(1.0))

    def test_sojourn_and_littles_law(self):
        queue = MG1(0.04, deterministic_pmf(10.0))
        assert queue.mean_sojourn() == pytest.approx(queue.mean_wait() + 10.0)
        assert queue.mean_queue_length() == pytest.approx(0.04 * queue.mean_wait())

    def test_mm1_wait_distribution_closed_form(self):
        """M/M/1 FCFS: P(W > t) = ρ·e^{−(μ−λ)t}."""
        mean_service = 5.0
        lam = 0.12  # rho = 0.6
        service = exponential_pmf(mean_service, delta=0.05)
        queue = MG1(lam, service)
        mu = 1.0 / mean_service
        for t in (0.0, 5.0, 20.0, 50.0):
            expected = 0.6 * math.exp(-(mu - lam) * t)
            # tolerance grows into the tail with the service discretisation
            assert queue.wait_survival_at(t) == pytest.approx(expected, rel=0.05, abs=1e-4)

    def test_wait_cdf_monotone_in_t(self):
        queue = MG1(0.06, deterministic_pmf(10.0))
        values = [queue.wait_cdf_at(t) for t in (0, 5, 10, 20, 40, 80)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_wait_cdf_negative_time_zero(self):
        queue = MG1(0.05, deterministic_pmf(10.0))
        assert queue.wait_cdf_at(-3.0) == 0.0

    def test_wait_cdf_unstable_raises(self):
        queue = MG1(0.2, deterministic_pmf(10.0))
        with pytest.raises(ValueError):
            queue.wait_cdf_at(10.0)

    def test_loss_beyond_deadline_limits(self):
        queue = MG1(0.05, deterministic_pmf(10.0))
        assert queue.loss_beyond_deadline(math.inf) == 0.0
        # at K = 0 the loss is P(W > 0) = probability of waiting = ρ for M/D/1?
        # For M/G/1, P(W = 0) = 1 − ρ, so P(W > 0) = ρ.
        assert queue.loss_beyond_deadline(0.0) == pytest.approx(0.5, abs=0.02)

    def test_loss_negative_deadline_rejected(self):
        queue = MG1(0.05, deterministic_pmf(10.0))
        with pytest.raises(ValueError):
            queue.loss_beyond_deadline(-1.0)

    def test_geometric_service_loss_decreases_with_deadline(self):
        queue = MG1(0.08, geometric_pmf(8.0, start=1.0))
        losses = [queue.loss_beyond_deadline(K) for K in (0, 10, 25, 60, 150)]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

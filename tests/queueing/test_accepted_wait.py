"""Tests for the accepted-customer waiting-time distribution."""

import numpy as np
import pytest

from repro.queueing import (
    accepted_wait_pmf,
    accepted_wait_pmf_from_chain,
    deterministic_pmf,
    simulate_impatient_mg1,
)


class TestValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            accepted_wait_pmf(0.05, deterministic_pmf(10.0), -1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            accepted_wait_pmf(-0.05, deterministic_pmf(10.0), 10.0)

    def test_zero_rate_all_mass_at_zero(self):
        pmf = accepted_wait_pmf(0.0, deterministic_pmf(10.0), 10.0)
        assert pmf.p[0] == pytest.approx(1.0)


class TestAgreement:
    def test_series_vs_chain(self):
        """Two independent algorithms, same conditional distribution."""
        lam, m, deadline = 0.03, 25.0, 60.0
        service = deterministic_pmf(m).refine(2)
        series = accepted_wait_pmf(lam, service, deadline)
        chain = accepted_wait_pmf_from_chain(lam, service, deadline)
        assert series.mean() == pytest.approx(chain.mean(), rel=0.05)
        for w in (10.0, 30.0, 50.0):
            assert series.cdf_at(w) == pytest.approx(chain.cdf_at(w), abs=0.03)

    def test_against_monte_carlo(self, rng):
        lam, m, deadline = 0.03, 25.0, 60.0
        service = deterministic_pmf(m)
        sim = simulate_impatient_mg1(lam, service, deadline, 400_000, rng)
        analytic = accepted_wait_pmf(lam, service, deadline)
        assert analytic.mean() == pytest.approx(sim.mean_accepted_wait, rel=0.05)


class TestShape:
    def test_proper_distribution(self):
        pmf = accepted_wait_pmf(0.03, deterministic_pmf(25.0), 60.0)
        assert pmf.p.sum() == pytest.approx(1.0)
        assert np.all(pmf.p >= 0.0)

    def test_support_within_deadline(self):
        deadline = 60.0
        pmf = accepted_wait_pmf(0.03, deterministic_pmf(25.0), deadline)
        assert pmf.support_max <= deadline + 1e-9

    def test_mass_at_zero_positive(self):
        """Accepted customers include those arriving to an idle server."""
        pmf = accepted_wait_pmf(0.03, deterministic_pmf(25.0), 60.0)
        assert pmf.p[0] > 0.1

    def test_tighter_deadline_smaller_mean_wait(self):
        service = deterministic_pmf(25.0)
        tight = accepted_wait_pmf(0.03, service, 30.0)
        loose = accepted_wait_pmf(0.03, service, 120.0)
        assert tight.mean() < loose.mean()

    def test_overloaded_queue_still_conditional(self):
        """At ρ > 1 the conditional distribution below K exists (only the
        chain route is guaranteed; the series may diverge pointwise)."""
        service = deterministic_pmf(25.0)
        pmf = accepted_wait_pmf_from_chain(0.06, service, 40.0)  # rho = 1.5
        assert pmf.p.sum() == pytest.approx(1.0)
        assert pmf.support_max <= 40.0 + 1e-9

"""Tests for the convolution-series machinery (z(K, ρ) of eq. 4.7)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing import deterministic_pmf, exponential_pmf, geometric_pmf
from repro.queueing.convolve import convolution_series, waiting_series_pmf


def residual_of(service):
    return service.residual()


class TestConvolutionSeries:
    def test_rho_zero_gives_unity(self):
        res = convolution_series(residual_of(deterministic_pmf(5.0)), 10.0, 0.0)
        assert res.z == 1.0
        assert res.converged

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            convolution_series(residual_of(deterministic_pmf(5.0)), -1.0, 0.5)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            convolution_series(residual_of(deterministic_pmf(5.0)), 1.0, -0.5)

    def test_k_infinity_limit_matches_geometric_sum(self):
        """For K far beyond all mass, z → 1/(1−ρ) (all q_i = 1)."""
        service = deterministic_pmf(5.0)
        rho = 0.6
        res = convolution_series(service.residual(), 100_000.0, rho, tol=1e-14)
        assert res.z == pytest.approx(1.0 / (1.0 - rho), rel=1e-6)

    def test_k_zero_keeps_only_first_term(self):
        res = convolution_series(residual_of(deterministic_pmf(5.0)), 0.0, 0.9)
        # with the midpoint convention every i >= 1 term needs sum >= 1/2 slot
        assert res.z == pytest.approx(1.0)

    def test_transformed_is_accept_probability(self):
        res = convolution_series(residual_of(deterministic_pmf(5.0)), 20.0, 0.5)
        kernel = res.transformed(0.5)
        assert 0.0 < kernel <= 1.0

    def test_converges_for_rho_above_one(self):
        service = deterministic_pmf(10.0)
        res = convolution_series(service.residual(), 50.0, 1.5)
        assert res.converged
        assert math.isfinite(res.z)

    def test_terms_increase_with_horizon(self):
        service = deterministic_pmf(10.0)
        short = convolution_series(service.residual(), 10.0, 0.8)
        long = convolution_series(service.residual(), 200.0, 0.8)
        assert long.terms >= short.terms

    def test_partial_integrals_monotone_decreasing(self):
        """q_i = P(sum of i residuals <= K) decreases in i."""
        service = geometric_pmf(8.0, start=1.0)
        res = convolution_series(service.residual(), 40.0, 0.7)
        partials = res.partial_integrals
        assert all(b <= a + 1e-12 for a, b in zip(partials, partials[1:]))

    def test_midpoint_flag_changes_value(self):
        service = deterministic_pmf(25.0)
        mid = convolution_series(service.residual(), 60.0, 0.75, midpoint=True)
        naive = convolution_series(service.residual(), 60.0, 0.75, midpoint=False)
        assert naive.z > mid.z  # left-aligned cells overstate in-horizon mass

    @given(rho=st.floats(0.05, 0.95), horizon=st.floats(1.0, 200.0))
    def test_z_bounds_property(self, rho, horizon):
        """1 <= z <= 1/(1−ρ) for any horizon when ρ < 1."""
        service = deterministic_pmf(10.0)
        res = convolution_series(service.residual(), horizon, rho)
        assert 1.0 - 1e-12 <= res.z <= 1.0 / (1.0 - rho) + 1e-9


class TestWaitingSeriesPmf:
    def test_total_mass_matches_mg1_cdf(self):
        """(1−ρ)·Σ ρ^i β^{(i)} integrates to the waiting cdf at the horizon."""
        service = deterministic_pmf(5.0)
        rho_target = 0.5
        lam = rho_target / service.mean()
        kernel = waiting_series_pmf(service.residual(), rho_target, horizon=1000.0)
        cdf_at_horizon = (1.0 - rho_target) * kernel.p.sum()
        assert cdf_at_horizon == pytest.approx(1.0, rel=1e-6)
        del lam

    def test_diverges_for_saturated_queue(self):
        service = deterministic_pmf(5.0)
        with pytest.raises(ValueError):
            waiting_series_pmf(service.residual(), 1.2, horizon=30.0)

    def test_negative_rho_rejected(self):
        service = deterministic_pmf(5.0)
        with pytest.raises(ValueError):
            waiting_series_pmf(service.residual(), -0.1, horizon=10.0)

    def test_kernel_nonnegative(self):
        service = exponential_pmf(5.0, delta=0.5)
        kernel = waiting_series_pmf(service.residual(), 0.6, horizon=50.0)
        assert np.all(kernel.p >= 0.0)

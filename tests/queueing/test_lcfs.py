"""Tests for the non-preemptive LCFS waiting-time analysis."""

import numpy as np
import pytest

from repro.queueing import (
    MG1,
    LCFSQueue,
    deterministic_pmf,
    simulate_mg1_waits,
)


class TestLCFS:
    def test_mean_wait_equals_fcfs_mean(self):
        """Work conservation: LCFS and FCFS share the same mean wait."""
        service = deterministic_pmf(10.0)
        lam = 0.05
        assert LCFSQueue(lam, service).mean_wait() == pytest.approx(
            MG1(lam, service).mean_wait()
        )

    def test_mean_wait_unstable_raises(self):
        with pytest.raises(ValueError):
            LCFSQueue(0.2, deterministic_pmf(10.0)).mean_wait()

    def test_no_wait_probability_is_idle(self):
        """P(W = 0) = 1 − ρ under any work-conserving discipline.

        On the lattice the residual's first cell carries an O(δ) atom at
        0, so the identity is approached as the lattice refines.
        """
        coarse = LCFSQueue(0.06, deterministic_pmf(10.0))
        fine = LCFSQueue(0.06, deterministic_pmf(10.0).refine(8))
        target = 1 - 0.6
        coarse_err = abs(coarse.wait_cdf_at(0.0) - target)
        fine_err = abs(fine.wait_cdf_at(0.0) - target)
        assert fine_err < coarse_err
        assert fine.wait_cdf_at(0.0) == pytest.approx(target, abs=0.01)

    def test_saturated_queue_loses_everything(self):
        queue = LCFSQueue(0.2, deterministic_pmf(10.0))
        assert queue.wait_survival_at(100.0) == 1.0
        assert queue.loss_beyond_deadline(100.0) == 1.0

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            LCFSQueue(0.05, deterministic_pmf(10.0)).loss_beyond_deadline(-1.0)

    def test_survival_monotone_decreasing(self):
        queue = LCFSQueue(0.06, deterministic_pmf(10.0).refine(2))
        values = [queue.wait_survival_at(t) for t in (0, 10, 30, 60, 120)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_heavier_tail_than_fcfs(self):
        """LCFS has the same mean but a heavier tail: beyond some t,
        P(W_LCFS > t) > P(W_FCFS > t)."""
        service = deterministic_pmf(10.0).refine(2)
        lam = 0.06
        lcfs = LCFSQueue(lam, service)
        fcfs = MG1(lam, service)
        t = 150.0
        assert lcfs.wait_survival_at(t) > fcfs.wait_survival_at(t)

    def test_lighter_head_than_fcfs(self):
        """Conversely LCFS beats FCFS at small deadlines (more customers
        served immediately after short backlogs)."""
        service = deterministic_pmf(10.0).refine(2)
        lam = 0.07
        lcfs = LCFSQueue(lam, service)
        fcfs = MG1(lam, service)
        assert lcfs.wait_survival_at(12.0) < fcfs.wait_survival_at(12.0)

    def test_against_event_simulation(self, rng):
        """Analytic LCFS tail matches a direct event-driven simulation."""
        service = deterministic_pmf(8.0)
        lam = 0.08  # rho = 0.64
        sim = simulate_mg1_waits(lam, service, 300_000, rng, discipline="lcfs")
        queue = LCFSQueue(lam, service.refine(4))
        for t in (10.0, 40.0, 100.0):
            analytic = queue.wait_survival_at(t)
            empirical = sim.fraction_late(t)
            assert analytic == pytest.approx(empirical, rel=0.12, abs=0.004)

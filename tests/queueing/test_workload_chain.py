"""Tests for the exact discrete workload chain (balking M/G/1 validator)."""

import numpy as np
import pytest

from repro.queueing import (
    ImpatientMG1,
    deterministic_pmf,
    geometric_pmf,
    solve_workload_chain,
)


class TestValidation:
    def test_service_mass_at_zero_rejected(self):
        from repro.queueing import LatticePMF

        with pytest.raises(ValueError):
            solve_workload_chain(0.1, LatticePMF([0.5, 0.5]), 10.0)

    def test_truncated_service_rejected(self):
        from repro.queueing import LatticePMF

        with pytest.raises(ValueError):
            solve_workload_chain(0.1, LatticePMF([0.0, 0.5]), 10.0)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            solve_workload_chain(0.1, deterministic_pmf(5.0), -1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            solve_workload_chain(-0.1, deterministic_pmf(5.0), 10.0)

    def test_unknown_discretization_rejected(self):
        with pytest.raises(ValueError):
            solve_workload_chain(
                0.1, deterministic_pmf(5.0), 10.0, arrival_discretization="weird"
            )

    def test_linear_discretization_requires_fine_lattice(self):
        with pytest.raises(ValueError):
            solve_workload_chain(
                1.5, deterministic_pmf(5.0), 10.0, arrival_discretization="linear"
            )


class TestSolution:
    def test_zero_rate_trivial(self):
        sol = solve_workload_chain(0.0, deterministic_pmf(5.0), 10.0)
        assert sol.loss_probability == 0.0
        assert sol.idle_probability == 1.0
        assert sol.mean_workload == 0.0

    def test_stationary_distribution_sums_to_one(self):
        sol = solve_workload_chain(0.05, deterministic_pmf(8.0), 24.0)
        assert sol.pi.sum() == pytest.approx(1.0)
        assert np.all(sol.pi >= 0.0)

    def test_loss_between_zero_and_one(self):
        sol = solve_workload_chain(0.2, deterministic_pmf(8.0), 16.0)
        assert 0.0 < sol.loss_probability < 1.0

    def test_loss_monotone_in_deadline(self):
        losses = [
            solve_workload_chain(0.08, deterministic_pmf(10.0), K).loss_probability
            for K in (0.0, 10.0, 30.0, 60.0)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_linear_vs_exponential_arrivals_agree_on_fine_lattice(self):
        service = deterministic_pmf(10.0).refine(4)
        a = solve_workload_chain(0.05, service, 30.0, "exponential")
        b = solve_workload_chain(0.05, service, 30.0, "linear")
        assert a.loss_probability == pytest.approx(b.loss_probability, rel=0.05)

    def test_refinement_converges_to_series_solver(self):
        """The chain (δ → 0) and the eq. 4.7 series agree — the paper's
        model solved two independent ways."""
        lam, m, K = 0.03, 25.0, 60.0
        series = ImpatientMG1(lam, deterministic_pmf(m).refine(4), K).solve()
        chain = solve_workload_chain(lam, deterministic_pmf(m).refine(8), K)
        assert chain.loss_probability == pytest.approx(
            series.loss_probability, rel=0.02
        )

    def test_geometric_service_agreement_with_series(self):
        lam, K = 0.05, 40.0
        service = geometric_pmf(12.0, start=1.0)
        series = ImpatientMG1(lam, service.refine(4), K).solve()
        chain = solve_workload_chain(lam, service.refine(4), K)
        assert chain.loss_probability == pytest.approx(
            series.loss_probability, rel=0.03
        )

    def test_idle_probability_against_flow_balance(self):
        """π(0) ≈ P(0) from eq. 4.6 on a fine lattice."""
        lam, m, K = 0.04, 10.0, 30.0
        chain = solve_workload_chain(lam, deterministic_pmf(m).refine(8), K)
        series = ImpatientMG1(lam, deterministic_pmf(m).refine(8), K).solve()
        # chain pi[0] is the per-slot idle probability; as δ→0 it tends to
        # the continuous P(workload = 0).
        assert chain.idle_probability == pytest.approx(
            series.idle_probability, rel=0.05
        )

    def test_mean_workload_positive_under_load(self):
        sol = solve_workload_chain(0.06, deterministic_pmf(10.0), 40.0)
        assert sol.mean_workload > 0.0

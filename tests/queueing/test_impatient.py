"""Tests for the impatient-customer M/G/1 solver (eq. 4.7)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing import (
    ImpatientMG1,
    deterministic_pmf,
    exponential_pmf,
    geometric_pmf,
    loss_curve,
)


class TestSolve:
    def test_zero_rate_no_loss(self):
        sol = ImpatientMG1(0.0, deterministic_pmf(5.0), 10.0).solve()
        assert sol.loss_probability == 0.0
        assert sol.idle_probability == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ImpatientMG1(-0.1, deterministic_pmf(5.0), 10.0)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            ImpatientMG1(0.1, deterministic_pmf(5.0), -1.0)

    def test_k_zero_is_erlang_loss(self):
        """At K = 0 a customer enters only an empty system: the paper's
        check says p(loss) → 1 − P(0), and the system is the M/G/1 loss
        system with blocking ρ/(1+ρ)."""
        service = deterministic_pmf(10.0)
        for lam in (0.02, 0.05, 0.15):
            rho = lam * 10.0
            sol = ImpatientMG1(lam, service, 0.0).solve()
            assert sol.loss_probability == pytest.approx(rho / (1 + rho), rel=1e-9)
            assert sol.loss_probability == pytest.approx(
                1.0 - sol.idle_probability, rel=1e-9
            )

    def test_k_infinite_no_loss_idle_matches(self):
        """As K → ∞ (paper's check): loss → 0, P(0) → 1 − ρ."""
        sol = ImpatientMG1(0.05, deterministic_pmf(10.0), math.inf).solve()
        assert sol.loss_probability == 0.0
        assert sol.idle_probability == pytest.approx(0.5, rel=1e-9)

    def test_k_infinite_saturated_rejected(self):
        with pytest.raises(ValueError):
            ImpatientMG1(0.2, deterministic_pmf(10.0), math.inf).solve()

    def test_large_finite_k_approaches_zero_loss(self):
        sol = ImpatientMG1(0.05, deterministic_pmf(10.0), 2000.0).solve()
        assert sol.loss_probability < 1e-8

    def test_saturated_loss_approaches_overload_fraction(self):
        """For ρ > 1 with a generous deadline, loss → 1 − 1/ρ (the queue
        serves at capacity; the excess is shed)."""
        lam, m = 0.06, 25.0  # rho = 1.5
        sol = ImpatientMG1(lam, deterministic_pmf(m), 2000.0).solve()
        assert sol.loss_probability == pytest.approx(1 - 1 / 1.5, abs=0.01)

    def test_loss_monotone_decreasing_in_deadline(self):
        service = geometric_pmf(8.0, start=1.0)
        losses = [
            ImpatientMG1(0.1, service, K).loss_probability()
            for K in (0, 5, 10, 20, 40, 80, 160)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_loss_monotone_increasing_in_rate(self):
        service = deterministic_pmf(10.0)
        losses = [
            ImpatientMG1(lam, service, 30.0).loss_probability()
            for lam in (0.02, 0.05, 0.08, 0.12)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(losses, losses[1:]))

    def test_accepted_rate_consistency(self):
        queue = ImpatientMG1(0.08, deterministic_pmf(10.0), 25.0)
        sol = queue.solve()
        assert sol.accepted_rate == pytest.approx(
            0.08 * (1 - sol.loss_probability)
        )

    def test_flow_conservation_identity(self):
        """eq. 4.6: p(accept)·ρ = 1 − P(0)."""
        queue = ImpatientMG1(0.07, geometric_pmf(12.0, start=1.0), 40.0)
        sol = queue.solve()
        assert (1 - sol.loss_probability) * sol.rho == pytest.approx(
            1 - sol.idle_probability, rel=1e-9
        )

    @given(lam=st.floats(0.01, 0.2), deadline=st.floats(0.0, 300.0))
    def test_loss_in_unit_interval_property(self, lam, deadline):
        sol = ImpatientMG1(lam, deterministic_pmf(10.0), deadline).solve()
        assert 0.0 <= sol.loss_probability <= 1.0
        assert 0.0 < sol.idle_probability <= 1.0


class TestLossCurve:
    def test_requires_model_or_transmission(self):
        with pytest.raises(ValueError):
            loss_curve(0.05, [10.0])

    def test_decreasing_deadlines_rejected(self):
        with pytest.raises(ValueError):
            loss_curve(0.05, [10.0, 5.0], transmission_time=10.0)

    def test_constant_service_matches_direct_solver(self):
        points = loss_curve(0.05, [0.0, 10.0, 30.0], transmission_time=10.0)
        for point in points:
            direct = ImpatientMG1(
                0.05, deterministic_pmf(10.0), point.deadline
            ).loss_probability()
            assert point.loss_probability == pytest.approx(direct, rel=1e-9)

    def test_curve_monotone_decreasing(self):
        points = loss_curve(
            0.06, [0, 5, 10, 20, 40, 80], transmission_time=10.0
        )
        losses = [p.loss_probability for p in points]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_coupled_service_model_uses_accepted_rate(self):
        """A service model depending on the accepted rate reaches a
        fixed point: heavier acceptance → longer service → more loss."""
        calls = []

        def service_model(accepted_rate):
            calls.append(accepted_rate)
            overhead = 2.0 + 20.0 * accepted_rate  # grows with traffic
            return geometric_pmf(overhead, start=1.0).shift(10.0)

        points = loss_curve(0.05, [20.0, 60.0], service_model=service_model)
        assert len(points) == 2
        assert len(calls) > 2  # fixed-point iterations happened
        assert points[1].loss_probability <= points[0].loss_probability

    def test_fixed_point_off_follows_paper_iteration(self):
        def service_model(accepted_rate):
            return deterministic_pmf(10.0)

        once = loss_curve(0.05, [10.0, 30.0], service_model=service_model,
                          fixed_point=False)
        assert len(once) == 2

    def test_point_metadata(self):
        points = loss_curve(0.05, [25.0], transmission_time=10.0)
        point = points[0]
        assert point.deadline == 25.0
        assert point.rho == pytest.approx(0.5)
        assert point.mean_service == pytest.approx(10.0)
        assert point.accepted_rate <= 0.05


class TestAgainstMM1ClosedForm:
    def test_exponential_service_loss_against_workload_formula(self):
        """M/M/1 + balking-at-K has a known workload density
        f(w) = P(0)·λ·e^{−(μ−λ)w} on (0, K]; check our series against it."""
        mean_service = 10.0
        lam = 0.06  # rho = 0.6
        mu = 1.0 / mean_service
        K = 30.0
        service = exponential_pmf(mean_service, delta=0.1)
        sol = ImpatientMG1(lam, service, K).solve()
        # closed form: F(K) = P0·(1 + ρ(1−e^{−(μ−λ)K})·μ/(μ−λ)·(1/ρ)…)
        # Derive via accept probability: p_acc = F(K) and flow balance.
        # Workload cdf: F(w) = P0·(1 + λ/(μ−λ)·(1−e^{−(μ−λ)w}))
        delta_rate = mu - lam
        accept_over_p0 = 1.0 + lam / delta_rate * (1.0 - math.exp(-delta_rate * K))
        # p_acc·rho = 1 − P0 and p_acc = P0·accept_over_p0:
        p0 = 1.0 / (1.0 + lam * mean_service * accept_over_p0)
        expected_loss = 1.0 - p0 * accept_over_p0
        assert sol.loss_probability == pytest.approx(expected_loss, rel=0.02)

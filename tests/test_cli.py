"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_defaults(self):
        args = build_parser().parse_args(["figure7"])
        assert args.rho == 0.5
        assert args.m == 25
        assert not args.simulate

    def test_simulate_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "psychic"])


class TestCommands:
    def test_capacity_output(self, capsys):
        assert main(["capacity", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "max offered load" in out
        assert "25" in out

    def test_figure7_table(self, capsys):
        assert main(["figure7", "--rho", "0.5", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "controlled_analytic" in out
        assert "fcfs_analytic" in out

    def test_figure7_csv(self, capsys):
        assert main(["figure7", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("deadline,")

    def test_simulate_runs(self, capsys):
        code = main([
            "simulate", "--protocol", "controlled", "--rho", "0.5",
            "--m", "25", "--deadline", "100", "--horizon", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss fraction" in out

    def test_theorem1_verifies(self, capsys):
        code = main(["theorem1", "--deadline", "6", "--m", "3", "--window", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 verified: True" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out


class TestSeedFlag:
    def test_every_subcommand_accepts_seed(self):
        parser = build_parser()
        for argv in (
            ["figure7", "--seed", "5"],
            ["theorem1", "--seed", "5"],
            ["simulate", "--seed", "5"],
            ["capacity", "--seed", "5"],
            ["ablations", "--seed", "5"],
            ["sensitivity", "--seed", "5"],
            ["robustness", "--seed", "5"],
            ["cache", "info", "--seed", "5"],
            ["serve", "--state", "/tmp/s", "--seed", "5"],
            ["submit", "--state", "/tmp/s", "{}", "--seed", "5"],
            ["status", "--state", "/tmp/s", "--seed", "5"],
            ["cancel", "--state", "/tmp/s", "j1", "--seed", "5"],
            ["drain", "--state", "/tmp/s", "--seed", "5"],
        ):
            assert parser.parse_args(argv).seed == 5

    def test_capacity_ignores_seed(self, capsys):
        assert main(["capacity", "--m", "25", "--seed", "99"]) == 0
        assert "max offered load" in capsys.readouterr().out


class TestSimulateExtras:
    def test_slot_shares_reported(self, capsys):
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", "20000", "--stations", "25",
        ])
        assert code == 0
        assert "slot shares" in capsys.readouterr().out

    def test_feedback_error_reports_telemetry(self, capsys):
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "75",
            "--horizon", "15000", "--stations", "25",
            "--feedback-error", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault telemetry" in out
        assert "lost to faults" in out


class TestRobustnessCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.scenario == "feedback"
        assert args.rho == 0.5
        assert args.m == 25
        assert args.seeds == 3

    def test_feedback_sweep_runs(self, capsys):
        code = main([
            "robustness", "--seeds", "1", "--horizon", "8000",
            "--errors", "0", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Graceful degradation" in out
        assert "error rate" in out

    def test_failure_soak_runs(self, capsys):
        code = main([
            "robustness", "--scenario", "failures", "--seeds", "1",
            "--horizon", "8000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Station-failure soak" in out
        assert "all runs completed" in out


class TestResilienceFlags:
    def test_sweep_commands_accept_the_flags(self):
        parser = build_parser()
        for command in ("figure7", "ablations", "sensitivity", "robustness"):
            args = parser.parse_args([
                command, "--checkpoint", "/tmp/j", "--task-timeout", "30",
                "--max-retries", "1",
            ])
            assert args.checkpoint == "/tmp/j"
            assert args.task_timeout == 30.0
            assert args.max_retries == 1
            assert not args.resume

    def test_resume_without_checkpoint_is_a_clean_error(self, capsys):
        assert main(["robustness", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_verify_replay_without_resume_is_a_clean_error(self, capsys):
        assert main(["robustness", "--checkpoint", "/tmp/j",
                     "--verify-replay"]) == 2
        assert "--verify-replay requires --resume" in capsys.readouterr().err

    def test_resume_from_missing_journal_is_a_clean_error(self, tmp_path, capsys):
        code = main([
            "robustness", "--seeds", "1", "--horizon", "4000",
            "--errors", "0",
            "--checkpoint", str(tmp_path / "absent"), "--resume",
        ])
        assert code == 2
        assert "no journal at" in capsys.readouterr().err

    def test_antithetic_with_pooled_backend_warns(self, capsys):
        # Mirrored twins only pay off under the t backend; pooled-count
        # backends see them as plain extra trials (docs/statistics.md),
        # so the combination must be called out rather than silently
        # doubling lane cost.
        assert main(["figure7", "--rho", "0.5", "--m", "25",
                     "--sequential", "--antithetic"]) == 0
        err = capsys.readouterr().err
        assert "--antithetic" in err
        assert "--ci-method t" in err

    def test_antithetic_with_t_backend_is_silent(self, capsys):
        assert main(["figure7", "--rho", "0.5", "--m", "25",
                     "--sequential", "--antithetic",
                     "--ci-method", "t"]) == 0
        assert "antithetic" not in capsys.readouterr().err

    def test_checkpointed_sweep_resumes_with_a_note(self, tmp_path, capsys):
        argv = [
            "robustness", "--seeds", "1", "--horizon", "4000",
            "--errors", "0", "0.02", "--checkpoint", str(tmp_path / "j"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "replayed" not in first
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        # Same degradation table, plus the explicit replay provenance.
        assert "2 replayed from journal" in resumed
        assert first.splitlines()[0] in resumed


class TestSensitivityCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sensitivity"])
        assert args.scenario == "stations"
        assert args.workers is None

    def test_scheduling_scenario_is_analytic_and_fast(self, capsys):
        assert main(["sensitivity", "--scenario", "scheduling"]) == 0
        out = capsys.readouterr().out
        assert "scheduling-time law" in out
        assert "geometric" in out

    def test_stations_scenario_runs_simulation(self, capsys):
        code = main([
            "sensitivity", "--scenario", "stations", "--horizon", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stations" in out
        assert "population" in out


class TestAblationsSimulate:
    def test_default_stays_analytic(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert "Two-endpoint fit" in out

    def test_simulate_mode_runs_all_four_sections(self, capsys):
        code = main([
            "ablations", "--simulate", "--horizon", "3000", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("Element 4", "Element 2", "Element 3", "Section 5"):
            assert marker in out


class TestSimulateTiming:
    def test_reports_elapsed_and_loop_only_speed(self, capsys):
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "elapsed" in out
        assert "simulation speed" in out
        assert "slots/s" in out


class TestObservabilityFlags:
    def test_sim_commands_accept_metrics_and_trace(self):
        parser = build_parser()
        for command in ("figure7", "theorem1", "simulate", "ablations",
                        "sensitivity", "robustness"):
            args = parser.parse_args([command, "--metrics", "--trace", "t.jsonl"])
            assert args.metrics == "report.json"  # bare --metrics default
            assert args.trace == "t.jsonl"
            args = parser.parse_args([command, "--metrics", "custom.json"])
            assert args.metrics == "custom.json"
            assert parser.parse_args([command]).metrics is None

    def test_metrics_flag_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", "20000", "--metrics", str(report_path),
        ])
        assert code == 0
        assert f"report written to {report_path}" in capsys.readouterr().err

        from repro.obs import load_report

        report = load_report(report_path)
        assert report["command"] == "simulate"
        assert report["metrics"]["mac.runs"]["value"] == 1
        assert report["metrics"]["mac.slots.idle"]["value"] > 0
        assert report["timings"]["total_s"] > 0

    def test_trace_flag_writes_parseable_jsonl(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "figure7", "--rho", "0.5", "--m", "25",
            "--trace", str(trace_path),
        ])
        assert code == 0
        capsys.readouterr()

        from repro.obs.tracing import load_trace

        events = load_trace(trace_path)
        assert any(e["name"] == "figure7.analytic" for e in events)
        assert all(e["ph"] in ("X", "i") for e in events)

    def test_global_registry_uninstalled_after_command(self, tmp_path):
        from repro.obs.metrics import global_registry

        assert main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", "20000", "--metrics", str(tmp_path / "r.json"),
        ]) == 0
        assert global_registry() is None


class TestReportCommand:
    def _write_report(self, path, seed=1, horizon="20000"):
        assert main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", horizon, "--seed", str(seed),
            "--metrics", str(path),
        ]) == 0

    def test_show_renders_report(self, tmp_path, capsys):
        path = tmp_path / "r.json"
        self._write_report(path)
        capsys.readouterr()
        assert main(["report", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Run report" in out
        assert "mac.runs" in out

    def test_diff_same_seed_runs_agree(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(a)
        self._write_report(b)
        capsys.readouterr()
        assert main(["report", "diff", str(a), str(b)]) == 0
        assert "no metric drift" in capsys.readouterr().out

    def test_diff_exits_nonzero_on_drift(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(a, horizon="20000")
        self._write_report(b, horizon="15000")
        capsys.readouterr()
        assert main(["report", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "difference(s):" in out
        assert "mac.slots" in out

    def test_show_requires_exactly_one_file(self, tmp_path, capsys):
        code = main(["report", "show", str(tmp_path / "a"), str(tmp_path / "b")])
        assert code == 2
        assert "exactly one FILE" in capsys.readouterr().err

    def test_diff_requires_exactly_two_files(self, tmp_path, capsys):
        assert main(["report", "diff", str(tmp_path / "a")]) == 2
        assert "exactly two FILE" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_reports_schema_and_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "repro-cache-v" in out

    def test_clear_removes_disk_entries(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro import cache

        cache.get_or_compute("cli-test", (1,), lambda: "x")
        assert list(tmp_path.glob("*.pkl"))
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached entry" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.pkl"))


class TestServiceCommands:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--state", "/tmp/s"])
        assert args.port == 0
        assert args.lease_ttl == 30.0
        assert args.max_jobs == 8
        assert args.batch is True

    def test_submit_accepts_inline_json_and_wait_flags(self):
        args = build_parser().parse_args([
            "submit", "--state", "/tmp/s", '{"kind": "figure7"}',
            "--wait", "--timeout", "60", "--results", "out.json",
        ])
        assert args.grid == '{"kind": "figure7"}'
        assert args.wait and args.timeout == 60.0
        assert args.results == "out.json"

    def test_status_job_id_is_optional(self):
        parser = build_parser()
        assert parser.parse_args(["status", "--state", "/tmp/s"]).job_id is None
        args = parser.parse_args(["status", "--state", "/tmp/s", "j0001-ab"])
        assert args.job_id == "j0001-ab"

    def test_cancel_requires_job_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cancel", "--state", "/tmp/s"])

    def test_unreachable_server_exits_4(self, tmp_path, capsys):
        code = main(["status", "--state", str(tmp_path / "nowhere")])
        assert code == 4
        assert "service error" in capsys.readouterr().err

    def test_submit_rejects_bad_json_grid(self, tmp_path, capsys):
        # Grid validation fails before any connection is attempted.
        code = main(["submit", "--state", str(tmp_path), "{not json"])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

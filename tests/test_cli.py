"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_defaults(self):
        args = build_parser().parse_args(["figure7"])
        assert args.rho == 0.5
        assert args.m == 25
        assert not args.simulate

    def test_simulate_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "psychic"])


class TestCommands:
    def test_capacity_output(self, capsys):
        assert main(["capacity", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "max offered load" in out
        assert "25" in out

    def test_figure7_table(self, capsys):
        assert main(["figure7", "--rho", "0.5", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "controlled_analytic" in out
        assert "fcfs_analytic" in out

    def test_figure7_csv(self, capsys):
        assert main(["figure7", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("deadline,")

    def test_simulate_runs(self, capsys):
        code = main([
            "simulate", "--protocol", "controlled", "--rho", "0.5",
            "--m", "25", "--deadline", "100", "--horizon", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss fraction" in out

    def test_theorem1_verifies(self, capsys):
        code = main(["theorem1", "--deadline", "6", "--m", "3", "--window", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 verified: True" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out


class TestSeedFlag:
    def test_every_subcommand_accepts_seed(self):
        parser = build_parser()
        for argv in (
            ["figure7", "--seed", "5"],
            ["theorem1", "--seed", "5"],
            ["simulate", "--seed", "5"],
            ["capacity", "--seed", "5"],
            ["ablations", "--seed", "5"],
            ["robustness", "--seed", "5"],
        ):
            assert parser.parse_args(argv).seed == 5

    def test_capacity_ignores_seed(self, capsys):
        assert main(["capacity", "--m", "25", "--seed", "99"]) == 0
        assert "max offered load" in capsys.readouterr().out


class TestSimulateExtras:
    def test_slot_shares_reported(self, capsys):
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "100",
            "--horizon", "20000", "--stations", "25",
        ])
        assert code == 0
        assert "slot shares" in capsys.readouterr().out

    def test_feedback_error_reports_telemetry(self, capsys):
        code = main([
            "simulate", "--rho", "0.5", "--m", "25", "--deadline", "75",
            "--horizon", "15000", "--stations", "25",
            "--feedback-error", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault telemetry" in out
        assert "lost to faults" in out


class TestRobustnessCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["robustness"])
        assert args.scenario == "feedback"
        assert args.rho == 0.5
        assert args.m == 25
        assert args.seeds == 3

    def test_feedback_sweep_runs(self, capsys):
        code = main([
            "robustness", "--seeds", "1", "--horizon", "8000",
            "--errors", "0", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Graceful degradation" in out
        assert "error rate" in out

    def test_failure_soak_runs(self, capsys):
        code = main([
            "robustness", "--scenario", "failures", "--seeds", "1",
            "--horizon", "8000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Station-failure soak" in out
        assert "all runs completed" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_defaults(self):
        args = build_parser().parse_args(["figure7"])
        assert args.rho == 0.5
        assert args.m == 25
        assert not args.simulate

    def test_simulate_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "psychic"])


class TestCommands:
    def test_capacity_output(self, capsys):
        assert main(["capacity", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "max offered load" in out
        assert "25" in out

    def test_figure7_table(self, capsys):
        assert main(["figure7", "--rho", "0.5", "--m", "25"]) == 0
        out = capsys.readouterr().out
        assert "controlled_analytic" in out
        assert "fcfs_analytic" in out

    def test_figure7_csv(self, capsys):
        assert main(["figure7", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("deadline,")

    def test_simulate_runs(self, capsys):
        code = main([
            "simulate", "--protocol", "controlled", "--rho", "0.5",
            "--m", "25", "--deadline", "100", "--horizon", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss fraction" in out

    def test_theorem1_verifies(self, capsys):
        code = main(["theorem1", "--deadline", "6", "--m", "3", "--window", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 verified: True" in out

    def test_ablations_run(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out

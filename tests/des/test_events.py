"""Unit tests for event primitives: conditions, interrupts, failure."""

import pytest

from repro.des import AllOf, AnyOf, Interrupt, Simulator


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    event.succeed("hello")
    results = []

    def waiter(sim):
        value = yield event
        results.append(value)

    sim.process(waiter(sim))
    sim.run()
    assert results == ["hello"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    event = sim.event()
    event.fail(KeyError("gone"), delay=1.0)
    caught = []

    def waiter(sim):
        try:
            yield event
        except KeyError as exc:
            caught.append(exc.args[0])

    sim.process(waiter(sim))
    sim.run()
    assert caught == ["gone"]


def test_all_of_collects_all_values():
    sim = Simulator()
    results = []

    def waiter(sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(2.0, value="two")
        values = yield sim.all_of([t1, t2])
        results.append(sorted(values.values()))

    sim.process(waiter(sim))
    sim.run()
    assert results == [["one", "two"]]
    assert sim.now == 2.0


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def waiter(sim):
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        values = yield sim.any_of([slow, fast])
        results.append(list(values.values()))

    sim.process(waiter(sim))
    sim.run(until=2.0)
    assert results == [["fast"]]


def test_any_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def waiter(sim):
        yield sim.any_of([])
        done.append(sim.now)

    sim.process(waiter(sim))
    sim.run()
    assert done == [0.0]


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    caught = []

    def waiter(sim):
        ok = sim.timeout(5.0)
        bad = sim.event()
        bad.fail(RuntimeError("child failed"), delay=1.0)
        try:
            yield sim.all_of([ok, bad])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.process(waiter(sim))
    sim.run()
    assert caught == [(1.0, "child failed")]


def test_interrupt_reaches_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt(cause="wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(3.0, "wake up")]


def test_interrupting_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [3.0]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_condition_mixed_simulators_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    event_b = sim_b.event()
    with pytest.raises(ValueError):
        AllOf(sim_a, [event_b])


def test_any_of_with_failed_first_child():
    sim = Simulator()
    caught = []

    def waiter(sim):
        bad = sim.event()
        bad.fail(ValueError("first"), delay=1.0)
        ok = sim.timeout(5.0)
        try:
            yield AnyOf(sim, [bad, ok])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    sim.run()
    assert caught == ["first"]

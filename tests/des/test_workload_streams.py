"""Regression pin: workload arrivals live on their own named substream.

The seed-derivation contract (``RandomStreams``): each consumer draws
from its own named substream, so adding or swapping one consumer never
perturbs the others.  Workload arrival generation historically drew from
the protocol stream (``"mac-simulator"``), which meant attaching *any*
workload shifted every subsequent protocol and fault draw.  These tests
pin the fix: under ``RandomStreams`` the workload draws from
``streams.get("workload")``, leaving the protocol and fault streams
untouched; plain-seed construction keeps the historical shared
generator so every pinned single-seed result stands.
"""

import numpy as np

from repro.core import ControlPolicy
from repro.des.rng import RandomStreams
from repro.mac.simulator import WindowMACSimulator
from repro.workloads import AdversarialWorkload, HeavyTailedWorkload

M = 25
LAM = 0.5 / M
SEED = 11


def _simulator(workload, streams=None, seed=SEED):
    if streams is not None:
        return WindowMACSimulator(
            ControlPolicy.uncontrolled_fcfs(LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            n_stations=10,
            deadline=50.0,
            workload=workload,
            streams=streams,
        )
    return WindowMACSimulator(
        ControlPolicy.uncontrolled_fcfs(LAM),
        arrival_rate=LAM,
        transmission_slots=M,
        n_stations=10,
        deadline=50.0,
        workload=workload,
        seed=seed,
    )


def _draws_after_generation(workload):
    """Generate arrivals, then sample the protocol and fault streams."""
    streams = RandomStreams(SEED)
    simulator = _simulator(workload, streams=streams)
    simulator._generate_arrivals(4_000.0)
    return simulator.rng.random(16), simulator._fault_rng.random(16)


def test_swapping_workloads_never_perturbs_protocol_or_fault_streams():
    pareto = _draws_after_generation(HeavyTailedWorkload(rate=LAM, shape=1.5))
    bursts = _draws_after_generation(
        AdversarialWorkload(burst_size=4, interval=200.0, background_rate=LAM)
    )
    for left, right in zip(pareto, bursts):
        assert np.array_equal(left, right)


def test_workload_generation_consumes_no_protocol_draws():
    # The protocol/fault streams after arrival generation equal fresh
    # never-generated streams from the same master seed: generation
    # consumed zero draws from them.
    generated = _draws_after_generation(HeavyTailedWorkload(rate=LAM, shape=1.5))
    fresh = RandomStreams(SEED)
    assert np.array_equal(generated[0], fresh.get("mac-simulator").random(16))
    assert np.array_equal(generated[1], fresh.get("faults").random(16))


def test_workload_draws_from_the_named_substream():
    streams = RandomStreams(SEED)
    simulator = _simulator(
        HeavyTailedWorkload(rate=LAM, shape=1.5), streams=streams
    )
    messages = simulator._generate_arrivals(4_000.0)
    # The workload substream advanced...
    fresh = RandomStreams(SEED).get("workload")
    times, _ = HeavyTailedWorkload(rate=LAM, shape=1.5).generate(
        4_000.0, 10, fresh
    )
    assert [m.arrival for m in messages] == [float(t) for t in times]
    # ...and a different substream consumer reproduces nothing of it.
    assert not np.array_equal(
        simulator._arrival_rng.random(8), simulator.rng.random(8)
    )


def test_plain_seed_runs_keep_the_shared_generator():
    # Single-seed construction is the historical contract every pinned
    # golden result relies on: arrivals and protocol share one stream.
    simulator = _simulator(HeavyTailedWorkload(rate=LAM, shape=1.5))
    assert simulator._arrival_rng is simulator.rng


def test_default_poisson_under_streams_is_unchanged():
    # No workload attached: the built-in Poisson path must keep drawing
    # from the protocol stream exactly as before the substream fix, so
    # existing stream-seeded results are bit-identical.
    streams = RandomStreams(SEED)
    simulator = _simulator(None, streams=streams)
    assert simulator._arrival_rng is simulator.rng
    messages = simulator._generate_arrivals(4_000.0)
    rng = RandomStreams(SEED).get("mac-simulator")
    n = rng.poisson(LAM * 4_000.0)
    times = np.sort(rng.uniform(0.0, 4_000.0, size=n))
    assert [m.arrival for m in messages] == [float(t) for t in times]

"""Unit tests for reproducible random streams."""

import numpy as np
import pytest

from repro.des import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(7).get("arrivals").random(10)
    b = RandomStreams(7).get("arrivals").random(10)
    assert np.array_equal(a, b)


def test_different_streams_differ():
    streams = RandomStreams(7)
    a = streams.get("arrivals").random(10)
    b = streams.get("service").random(10)
    assert not np.array_equal(a, b)


def test_stream_instance_is_cached():
    streams = RandomStreams(3)
    assert streams.get("x") is streams.get("x")


def test_stream_isolation_under_consumption():
    """Consuming one stream must not perturb another (CRN property)."""
    one = RandomStreams(9)
    one.get("noise").random(1000)  # heavy consumption
    after = one.get("arrivals").random(5)

    fresh = RandomStreams(9)
    untouched = fresh.get("arrivals").random(5)
    assert np.array_equal(after, untouched)


def test_different_master_seeds_differ():
    a = RandomStreams(1).get("s").random(10)
    b = RandomStreams(2).get("s").random(10)
    assert not np.array_equal(a, b)


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(-1)


def test_spawn_replications_are_independent_and_reproducible():
    base = RandomStreams(5)
    rep0 = base.spawn(0).get("arrivals").random(8)
    rep1 = base.spawn(1).get("arrivals").random(8)
    assert not np.array_equal(rep0, rep1)
    again = RandomStreams(5).spawn(0).get("arrivals").random(8)
    assert np.array_equal(rep0, again)


def test_spawn_negative_index_rejected():
    with pytest.raises(ValueError):
        RandomStreams(5).spawn(-1)

"""Unit tests for reproducible random streams."""

import numpy as np
import pytest

from repro.des import AntitheticGenerator, RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(7).get("arrivals").random(10)
    b = RandomStreams(7).get("arrivals").random(10)
    assert np.array_equal(a, b)


def test_different_streams_differ():
    streams = RandomStreams(7)
    a = streams.get("arrivals").random(10)
    b = streams.get("service").random(10)
    assert not np.array_equal(a, b)


def test_stream_instance_is_cached():
    streams = RandomStreams(3)
    assert streams.get("x") is streams.get("x")


def test_stream_isolation_under_consumption():
    """Consuming one stream must not perturb another (CRN property)."""
    one = RandomStreams(9)
    one.get("noise").random(1000)  # heavy consumption
    after = one.get("arrivals").random(5)

    fresh = RandomStreams(9)
    untouched = fresh.get("arrivals").random(5)
    assert np.array_equal(after, untouched)


def test_different_master_seeds_differ():
    a = RandomStreams(1).get("s").random(10)
    b = RandomStreams(2).get("s").random(10)
    assert not np.array_equal(a, b)


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(-1)


def test_spawn_replications_are_independent_and_reproducible():
    base = RandomStreams(5)
    rep0 = base.spawn(0).get("arrivals").random(8)
    rep1 = base.spawn(1).get("arrivals").random(8)
    assert not np.array_equal(rep0, rep1)
    again = RandomStreams(5).spawn(0).get("arrivals").random(8)
    assert np.array_equal(rep0, again)


def test_spawn_negative_index_rejected():
    with pytest.raises(ValueError):
        RandomStreams(5).spawn(-1)


def test_antithetic_mirrors_random():
    plain = np.random.default_rng(11).random(100)
    mirrored = AntitheticGenerator(np.random.default_rng(11)).random(100)
    assert np.allclose(plain + mirrored, 1.0)


def test_antithetic_mirrors_uniform_within_bounds():
    plain = np.random.default_rng(11).uniform(2.0, 6.0, 50)
    mirrored = AntitheticGenerator(np.random.default_rng(11)).uniform(
        2.0, 6.0, 50
    )
    assert np.allclose(plain + mirrored, 8.0)  # reflected about (low+high)/2
    assert np.all((mirrored >= 2.0) & (mirrored <= 6.0))


def test_antithetic_consumes_identical_bit_stream():
    """Mirroring must not change *how much* randomness is drawn: draws
    after a mix of method calls stay aligned with the plain twin."""
    plain = np.random.default_rng(4)
    mirrored = AntitheticGenerator(np.random.default_rng(4))
    for rng in (plain, mirrored):
        rng.random(7)
        rng.poisson(3.0, size=5)
        rng.integers(0, 10, size=4)
    assert np.allclose(plain.random(20) + mirrored.random(20), 1.0)


def test_antithetic_delegates_non_uniform_methods():
    """poisson/integers/shuffle pass straight through to the base
    generator — only the uniform family is reflected."""
    plain = np.random.default_rng(4)
    mirrored = AntitheticGenerator(np.random.default_rng(4))
    assert np.array_equal(
        plain.poisson(2.0, size=10), mirrored.poisson(2.0, size=10)
    )
    assert np.array_equal(
        plain.integers(0, 100, size=10), mirrored.integers(0, 100, size=10)
    )


def test_antithetic_double_wrap_is_identity():
    """Wrapping an antithetic generator unwraps to the base: a pair of
    mirrors would silently reproduce the plain lane."""
    base = np.random.default_rng(8)
    double = AntitheticGenerator(AntitheticGenerator(np.random.default_rng(8)))
    assert np.allclose(base.random(20) + double.random(20), 1.0)


def test_streams_antithetic_flag_mirrors_every_stream():
    plain = RandomStreams(13)
    mirrored = RandomStreams(13, antithetic=True)
    for name in ("arrivals", "service"):
        a = plain.get(name).random(25)
        b = mirrored.get(name).random(25)
        assert np.allclose(a + b, 1.0)


def test_streams_spawn_inherits_antithetic_flag():
    plain = RandomStreams(13).spawn(2).get("arrivals").random(10)
    mirrored = (
        RandomStreams(13, antithetic=True).spawn(2).get("arrivals").random(10)
    )
    assert np.allclose(plain + mirrored, 1.0)

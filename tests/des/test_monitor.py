"""Unit tests for measurement probes (Counter, TimeSeries, Tally)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import Counter, Tally, TimeSeries


class TestCounter:
    def test_default_zero(self):
        assert Counter()["missing"] == 0

    def test_increment(self):
        counter = Counter()
        counter.increment("tx")
        counter.increment("tx", 4)
        assert counter["tx"] == 5

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.increment("a")
        snapshot = counter.as_dict()
        counter.increment("a")
        assert snapshot == {"a": 1}


class TestTimeSeries:
    def test_time_average_piecewise_constant(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        series.record(4.0, 0.0)
        # value 1 for 2 units, 3 for 2 units, then end at t=4
        assert series.time_average() == pytest.approx(2.0)

    def test_time_average_with_horizon(self):
        series = TimeSeries()
        series.record(0.0, 2.0)
        assert series.time_average(until=10.0) == pytest.approx(2.0)

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_empty_average_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries().time_average()

    def test_as_arrays(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        times, values = series.as_arrays()
        assert times.tolist() == [0.0, 1.0]
        assert values.tolist() == [1.0, 2.0]
        assert len(series) == 2


class TestTally:
    def test_moments_match_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        tally = Tally()
        tally.observe_many(data)
        assert tally.count == len(data)
        assert tally.mean == pytest.approx(np.mean(data))
        assert tally.variance == pytest.approx(np.var(data, ddof=1))
        assert tally.std == pytest.approx(np.std(data, ddof=1))
        assert tally.minimum == 1.0
        assert tally.maximum == 9.0

    def test_empty_tally_nan(self):
        tally = Tally()
        assert math.isnan(tally.mean)
        assert math.isnan(tally.variance)

    def test_single_observation_variance_nan(self):
        tally = Tally()
        tally.observe(1.0)
        assert math.isnan(tally.variance)

    def test_quantile_requires_samples(self):
        tally = Tally()
        tally.observe(1.0)
        with pytest.raises(RuntimeError):
            tally.quantile(0.5)

    def test_quantile_and_fraction_above(self):
        tally = Tally(keep_samples=True)
        tally.observe_many(range(101))  # 0..100
        assert tally.quantile(0.5) == pytest.approx(50.0)
        assert tally.fraction_above(89.5) == pytest.approx(11 / 101)

    def test_fraction_above_empty_raises(self):
        with pytest.raises(ValueError):
            Tally(keep_samples=True).fraction_above(0.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_welford_matches_numpy_property(self, data):
        tally = Tally()
        tally.observe_many(data)
        assert tally.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-6)
        assert tally.variance == pytest.approx(np.var(data, ddof=1), rel=1e-6, abs=1e-6)

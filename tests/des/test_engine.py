"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.des import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(3.5)
    sim.run()
    assert sim.now == 3.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_sequencing():
    sim = Simulator()
    log = []

    def proc(sim, log):
        for step in range(3):
            yield sim.timeout(1.0)
            log.append((step, sim.now))

    sim.process(proc(sim, log))
    sim.run()
    assert log == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def ticker(sim, name, period):
        while sim.now < 5.0:
            yield sim.timeout(period)
            log.append((name, sim.now))

    sim.process(ticker(sim, "fast", 1.0))
    sim.process(ticker(sim, "slow", 2.0))
    sim.run()
    fast = [t for name, t in log if name == "fast"]
    slow = [t for name, t in log if name == "slow"]
    assert fast == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert slow == [2.0, 4.0, 6.0]


def test_run_until_time_stops_early():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run(until=20.0)
    assert fired == [10.0]


def test_run_until_backwards_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "payload"

    done = sim.process(proc(sim))
    assert sim.run(until=done) == "payload"
    assert sim.now == 2.0


def test_run_until_event_propagates_failure():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    done = sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=done)


def test_run_until_unreachable_event_raises():
    sim = Simulator()
    orphan = sim.event()  # never triggered
    sim.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        sim.run(until=orphan)


def test_event_ordering_is_fifo_within_same_time():
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        sim.process(proc(sim, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0
    sim.run()
    assert sim.peek() == float("inf")


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(IndexError):
        sim.step()


def test_process_return_value_via_yield():
    sim = Simulator()
    collected = []

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        collected.append(value)

    sim.process(parent(sim))
    sim.run()
    assert collected == [42]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 17

    sim.process(bad(sim))
    with pytest.raises(TypeError, match="must\\s+yield Event"):
        sim.run()


def test_waiting_on_already_processed_event():
    sim = Simulator()
    log = []
    stale = sim.timeout(1.0, value="old")

    def late(sim):
        yield sim.timeout(5.0)
        value = yield stale  # fired long ago
        log.append((sim.now, value))

    sim.process(late(sim))
    sim.run()
    assert log == [(5.0, "old")]

"""Unit tests for Resource, PriorityResource and Store."""

import pytest

from repro.des import PriorityResource, Resource, Simulator, Store


def test_resource_serialises_holders():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def user(sim, resource, name, hold):
        with resource.request() as req:
            yield req
            log.append((name, "start", sim.now))
            yield sim.timeout(hold)
            log.append((name, "stop", sim.now))

    sim.process(user(sim, resource, "a", 2.0))
    sim.process(user(sim, resource, "b", 1.0))
    sim.run()
    assert log == [
        ("a", "start", 0.0),
        ("a", "stop", 2.0),
        ("b", "start", 2.0),
        ("b", "stop", 3.0),
    ]


def test_resource_capacity_two_runs_concurrently():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    starts = []

    def user(sim, resource):
        with resource.request() as req:
            yield req
            starts.append(sim.now)
            yield sim.timeout(1.0)

    for _ in range(3):
        sim.process(user(sim, resource))
    sim.run()
    assert starts == [0.0, 0.0, 1.0]


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_resource_counts_and_queue_length():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    req1 = resource.request()
    req2 = resource.request()
    sim.run()
    assert resource.count == 1
    assert resource.queue_length == 1
    resource.release(req1)
    sim.run()
    assert req2.processed
    assert resource.queue_length == 0


def test_releasing_nonholder_raises():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    req1 = resource.request()
    sim.run()
    stranger = resource.request()  # waits in queue
    stranger.cancel()
    assert req1.processed
    with pytest.raises(RuntimeError):
        resource._release(stranger)


def test_cancel_waiting_request_dequeues():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.request()
    waiting = resource.request()
    sim.run()
    assert resource.queue_length == 1
    waiting.cancel()
    assert resource.queue_length == 0


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def user(sim, resource, name, priority, delay):
        yield sim.timeout(delay)
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)
            yield sim.timeout(10.0)

    # First user grabs the resource; the others queue with priorities.
    sim.process(user(sim, resource, "holder", 0, 0.0))
    sim.process(user(sim, resource, "low", 5, 1.0))
    sim.process(user(sim, resource, "high", 1, 2.0))
    sim.run(until=15.0)
    assert order == ["holder", "high"]


def test_priority_ties_are_fifo():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    order = []

    def user(sim, resource, name):
        with resource.request(priority=1.0) as req:
            yield req
            order.append(name)
            yield sim.timeout(1.0)

    for name in ("first", "second", "third"):
        sim.process(user(sim, resource, name))
    sim.run()
    assert order == ["first", "second", "third"]


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    sim.process(consumer(sim, store))
    for item in ("x", "y", "z"):
        store.put(item)
    sim.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store):
        item = yield store.get()
        received.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(4.0)
        store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert received == [(4.0, "late")]


def test_store_capacity_overflow():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put(1)
    with pytest.raises(OverflowError):
        store.put(2)


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)

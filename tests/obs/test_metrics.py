"""Unit tests for the metric primitives and the registry."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    global_registry,
    install,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_amounts(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge_from(b)
        assert a.value == 7


class TestGauge:
    def test_unset_gauge_has_none_value(self):
        assert Gauge().value is None

    def test_set_keeps_maximum(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(3)
        gauge.set(9)
        assert gauge.value == 9

    def test_merge_keeps_maximum_and_ignores_unset(self):
        a, b = Gauge(), Gauge()
        a.set(2)
        b.set(7)
        a.merge_from(b)
        assert a.value == 7
        a.merge_from(Gauge())  # unset other: no change
        assert a.value == 7


class TestHistogram:
    def test_bucket_placement_on_upper_edges(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 2.0, 10.0, 11.0):
            hist.observe(value)
        # <=1, <=10, >10 (implicit +inf bucket)
        assert hist.counts == [2, 2, 1]
        assert hist.total == 5
        assert hist.sum == pytest.approx(24.5)

    def test_rejects_non_ascending_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=())

    def test_mean(self):
        hist = Histogram()
        assert math.isnan(hist.mean)
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3

    def test_merge_requires_identical_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="different bounds"):
            a.merge_from(b)

    def test_merge_adds_counts_and_sums(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge_from(b)
        assert a.counts == [1, 1, 1]
        assert a.total == 3
        assert a.sum == pytest.approx(7.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="not a gauge"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="not a histogram"):
            registry.histogram("x")
        registry.gauge("g")
        with pytest.raises(TypeError, match="not a counter"):
            registry.counter("g")

    def test_inc_shorthand(self):
        registry = MetricsRegistry()
        registry.inc("n", 2)
        registry.inc("n")
        assert registry.value("n") == 3

    def test_value_of_histogram_is_total(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1)
        registry.histogram("h").observe(100)
        assert registry.value("h") == 2
        assert registry.value("absent", default=-1) == -1

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(5)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2)
        assert len(registry) == 0
        assert registry.to_dict() == {}

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.inc("zebra")
        registry.inc("ant")
        assert registry.names() == ["ant", "zebra"]

    def test_roundtrip_through_dict(self):
        registry = MetricsRegistry()
        registry.counter("c", unit="slots").inc(7)
        registry.gauge("g", volatile=True).set(3)
        hist = registry.histogram("h", bounds=DURATION_BUCKETS_S, unit="s")
        hist.observe(0.01)
        restored = MetricsRegistry.from_dict(registry.to_dict())
        assert restored == registry
        assert restored.get("c").unit == "slots"
        assert restored.get("g").volatile is True
        assert restored.get("h").bounds == DURATION_BUCKETS_S

    def test_to_dict_is_json_portable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.5)
        again = json.loads(json.dumps(registry.to_dict()))
        assert MetricsRegistry.from_dict(again) == registry

    def test_merge_from_adopts_absent_names(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("only-b", unit="slots").inc(4)
        a.merge_from(b)
        assert a.value("only-b") == 4
        assert a.get("only-b").unit == "slots"
        # adopting copies state: mutating a must not touch b
        a.counter("only-b").inc(1)
        assert b.value("only-b") == 4

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError, match="cannot merge"):
            a.merge_from(b)

    def test_merged_classmethod_folds_list(self):
        parts = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.inc("n", amount)
            parts.append(registry)
        assert MetricsRegistry.merged(parts).value("n") == 6

    def test_drop_volatile(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc(1)
        registry.counter("drop", volatile=True).inc(1)
        remainder = registry.drop_volatile()
        assert remainder.names() == ["keep"]
        # the original is untouched
        assert registry.names() == ["drop", "keep"]

    def test_default_bucket_schemas(self):
        assert SIZE_BUCKETS == tuple(sorted(SIZE_BUCKETS))
        assert DURATION_BUCKETS_S == tuple(sorted(DURATION_BUCKETS_S))


class TestGlobalRegistry:
    def test_install_returns_previous_and_restores(self):
        registry = MetricsRegistry()
        previous = install(registry)
        try:
            assert global_registry() is registry
        finally:
            assert install(previous) is registry

"""Property tests for ``MetricsRegistry.merge``.

Merging is the mechanism by which per-worker registries are folded into
one sweep-level view, so it must behave like a commutative monoid:
associative, commutative, with the empty registry as identity.  Worker
counts then cannot matter — folding the same per-cell registries in any
chunking yields the same merged registry — which the last test checks
against the real ``SweepExecutor`` at 2 vs 4 workers.

All generated metric values are small integers so equality is exact
(float addition is not associative; integer addition is).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ControlPolicy
from repro.experiments.sweep import MACRunSpec, SweepExecutor
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry

NAMES = st.sampled_from(["alpha", "beta", "gamma", "delta"])
KIND_FOR = {"alpha": "counter", "beta": "counter", "gamma": "gauge", "delta": "hist"}


@st.composite
def registries(draw):
    """A registry with integer-valued metrics of stable per-name kinds."""
    registry = MetricsRegistry()
    for name in draw(st.lists(NAMES, max_size=6)):
        kind = KIND_FOR[name]
        if kind == "counter":
            registry.counter(name).inc(draw(st.integers(0, 100)))
        elif kind == "gauge":
            registry.gauge(name).set(draw(st.integers(0, 100)))
        else:
            hist = registry.histogram(name, bounds=SIZE_BUCKETS)
            for value in draw(st.lists(st.integers(0, 2000), max_size=5)):
                hist.observe(value)
    return registry


@given(registries(), registries(), registries())
def test_merge_is_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(registries(), registries())
def test_merge_is_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(registries())
def test_empty_registry_is_identity(a):
    empty = MetricsRegistry()
    assert a.merge(empty) == a
    assert empty.merge(a) == a


@given(st.lists(registries(), max_size=8), st.integers(1, 4))
def test_chunked_fold_matches_flat_fold(parts, chunk_size):
    """Folding worker-sized chunks first changes nothing (worker invariance)."""
    flat = MetricsRegistry.merged(parts)
    chunked = MetricsRegistry.merged(
        MetricsRegistry.merged(parts[i : i + chunk_size])
        for i in range(0, len(parts), chunk_size)
    )
    assert chunked == flat


def _specs():
    lam, m, deadline = 0.01, 25, 75.0
    return [
        MACRunSpec(
            policy=policy,
            arrival_rate=lam,
            transmission_slots=m,
            deadline=deadline,
            horizon=3000.0,
            warmup=500.0,
            seed=seed,
        )
        for policy in (
            ControlPolicy.optimal(deadline, lam),
            ControlPolicy.uncontrolled_fcfs(lam),
        )
        for seed in (1, 2)
    ]


@settings(deadline=None, max_examples=1)
@given(st.just(None))
def test_sweep_merge_is_worker_count_invariant(_):
    """2 vs 4 workers: identical merged simulation metrics end to end."""
    merged = {}
    for workers in (2, 4):
        executor = SweepExecutor(workers=workers, metrics=MetricsRegistry())
        executor.run_specs(_specs())
        merged[workers] = executor.last_sim_metrics
    assert merged[2] == merged[4]
    assert merged[2].value("mac.runs") == len(_specs())

"""Tests for run reports: build/write/load, rendering, and the differ."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    diff_reports,
    load_report,
    render_report,
    write_report,
)


def _registry(runs=3, wall=0.5):
    registry = MetricsRegistry()
    registry.counter("mac.runs").inc(runs)
    registry.histogram("mac.backlog.size").observe(2)
    registry.counter("cache.misses", volatile=True).inc(1)
    registry.gauge("sweep.wall_s", unit="s", volatile=True).set(wall)
    return registry


def _report(seed=1, **kwargs):
    return build_report(
        command="figure7",
        argv=["figure7", "--simulate"],
        seed=seed,
        metrics=_registry(**kwargs),
        timings={"total_s": 1.25},
    )


def test_build_write_load_roundtrip(tmp_path):
    report = _report()
    path = tmp_path / "report.json"
    write_report(path, report)
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(report))
    assert loaded["schema"] == REPORT_SCHEMA
    assert loaded["command"] == "figure7"
    assert loaded["seed"] == 1
    assert loaded["timings"] == {"total_s": 1.25}
    assert "python" in loaded["environment"]
    assert MetricsRegistry.from_dict(loaded["metrics"]) == _registry()


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError, match="schema"):
        load_report(path)


def test_render_mentions_command_and_metrics():
    text = render_report(_report())
    for expected in ("figure7", "seed", "mac.runs", "histogram", "volatile"):
        assert expected in text


def test_diff_identical_reports_is_empty():
    assert diff_reports(_report(), _report()) == []


def test_diff_ignores_volatile_unless_asked():
    a = _report(wall=0.5)
    b = _report(wall=9.5)
    assert diff_reports(a, b) == []
    drift = diff_reports(a, b, include_volatile=True)
    assert any("sweep.wall_s" in line for line in drift)


def test_diff_reports_value_drift():
    drift = diff_reports(_report(runs=3), _report(runs=4))
    assert drift == ["mac.runs: 3 != 4"]


def test_diff_treats_stats_names_as_volatile_by_default():
    # Sequential lane-economy counters (stats.*) legitimately differ
    # between a fresh run and a journal resume (replayed lanes are not
    # re-spent), so the differ must ignore them by name even when a
    # producer forgets the per-entry volatile flag.
    a, b = _report(), _report()
    noisy = MetricsRegistry.from_dict(b["metrics"])
    noisy.counter("stats.lanes_spent").inc(24)  # note: NOT flagged volatile
    noisy.gauge("stats.arm.controlled.stopping_wave").set(3.0)
    b["metrics"] = noisy.to_dict()
    assert diff_reports(a, b) == []
    drift = diff_reports(a, b, include_volatile=True)
    assert any("stats.lanes_spent" in line for line in drift)
    assert any("stats.arm.controlled.stopping_wave" in line for line in drift)


def test_diff_volatile_prefix_does_not_swallow_lookalikes():
    # Only the reserved "stats." namespace is name-volatile; an
    # unrelated metric that merely contains the substring still diffs.
    a, b = _report(), _report()
    noisy = MetricsRegistry.from_dict(b["metrics"])
    noisy.counter("mac.stats.checks").inc(7)
    b["metrics"] = noisy.to_dict()
    assert diff_reports(a, b) == ["only in B: mac.stats.checks"]


def test_diff_reports_histogram_drift():
    a, b = _report(), _report()
    extra = MetricsRegistry.from_dict(b["metrics"])
    extra.histogram("mac.backlog.size").observe(50)
    b["metrics"] = extra.to_dict()
    drift = diff_reports(a, b)
    assert any(line.startswith("mac.backlog.size: counts") for line in drift)
    assert any(line.startswith("mac.backlog.size: total") for line in drift)


def test_diff_reports_only_in_one_side():
    a, b = _report(), _report()
    extra = MetricsRegistry.from_dict(b["metrics"])
    extra.counter("mac.extra").inc(1)
    b["metrics"] = extra.to_dict()
    assert diff_reports(a, b) == ["only in B: mac.extra"]
    assert diff_reports(b, a) == ["only in A: mac.extra"]


def test_diff_flags_seed_mismatch_first():
    drift = diff_reports(_report(seed=1, runs=3), _report(seed=2, runs=4))
    assert drift[0].startswith("seed differs: 1 != 2")
    assert "mac.runs: 3 != 4" in drift

"""Tests for the JSON-lines chrome://tracing span writer."""

from __future__ import annotations

import json

from repro.obs.tracing import (
    JsonlTracer,
    NullTracer,
    current_tracer,
    install_tracer,
    load_trace,
    span,
)


def test_jsonl_tracer_writes_complete_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = JsonlTracer(path)
    with tracer.span("outer", rho=0.5):
        with tracer.span("inner"):
            pass
    tracer.instant("marker", note="hello")
    tracer.close()

    events = load_trace(path)
    assert [e["name"] for e in events] == ["inner", "outer", "marker"]
    outer = events[1]
    assert outer["ph"] == "X"
    assert outer["args"] == {"rho": 0.5}
    assert outer["dur"] >= events[0]["dur"] >= 0
    assert events[2]["ph"] == "i"
    # every line is standalone JSON (chrome trace event format)
    for line in path.read_text().splitlines():
        parsed = json.loads(line)
        assert {"name", "ph", "ts", "pid", "tid"} <= set(parsed)


def test_nesting_timestamps_are_ordered(tmp_path):
    tracer = JsonlTracer(tmp_path / "t.jsonl")
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.close()
    inner, outer = load_trace(tmp_path / "t.jsonl")
    assert outer["ts"] <= inner["ts"]
    assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]


def test_install_tracer_swaps_and_restores(tmp_path):
    assert isinstance(current_tracer(), NullTracer)
    tracer = JsonlTracer(tmp_path / "t.jsonl")
    previous = install_tracer(tracer)
    try:
        assert current_tracer() is tracer
        with span("via-module-helper"):
            pass
    finally:
        install_tracer(previous)
        tracer.close()
    assert isinstance(current_tracer(), NullTracer)
    events = load_trace(tmp_path / "t.jsonl")
    assert [e["name"] for e in events] == ["via-module-helper"]


def test_module_span_is_noop_without_tracer():
    # must not raise and must not write anywhere
    with span("nobody-listening", detail=1):
        pass


def test_events_counter(tmp_path):
    tracer = JsonlTracer(tmp_path / "t.jsonl")
    assert tracer.events == 0
    with tracer.span("a"):
        pass
    tracer.instant("b")
    assert tracer.events == 2
    tracer.close()


def test_tracer_accepts_open_file(tmp_path):
    path = tmp_path / "t.jsonl"
    with open(path, "w") as sink:
        tracer = JsonlTracer(sink)
        with tracer.span("x"):
            pass
    assert [e["name"] for e in load_trace(path)] == ["x"]

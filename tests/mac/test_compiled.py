"""Bit-parity and fallback behaviour of the compiled MAC backend.

The contract under test (the tentpole of ISSUE 7): running with
``backend="compiled"`` is **field-for-field identical** to the fast
kernel and to the reference loop for all four protocol disciplines —
seeded RANDOM included — with equal metrics registries when
instrumentation is on.  On top of parity: the numba-less fallback must
be a logged notice and a pure-NumPy run, never a crash; ineligible runs
must fall back through the fast-kernel chain; and the backend must hold
across ragged station counts (the 1e5–1e6 scaling axis is exercised at
its small end here — the perf budgets live in the perf smoke).
"""

import dataclasses
import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ControlPolicy
from repro.des.rng import RandomStreams
from repro.mac.kernels import compiled
from repro.mac.simulator import WindowMACSimulator
from repro.obs.metrics import MetricsRegistry

M = 25
LAM = 0.5 / M
DEADLINE = 3.0 * M

PROTOCOLS = ("optimal", "uncontrolled_fcfs", "uncontrolled_lcfs", "uncontrolled_random")


def _policy(name: str) -> ControlPolicy:
    if name == "optimal":
        return ControlPolicy.optimal(DEADLINE, LAM)
    return getattr(ControlPolicy, name)(LAM)


def _run(name: str, backend: str, seed=1, n_stations=25, metrics=None, **kwargs):
    simulator = WindowMACSimulator(
        _policy(name),
        arrival_rate=LAM,
        transmission_slots=M,
        n_stations=n_stations,
        deadline=DEADLINE,
        seed=seed,
        backend=backend,
        metrics=metrics,
        **kwargs,
    )
    return simulator.run(4_000.0, warmup_slots=500.0)


class TestBitParity:
    @pytest.mark.parametrize("name", PROTOCOLS)
    @pytest.mark.parametrize("seed", (1, 7, 42))
    def test_compiled_equals_fast_and_reference(self, name, seed):
        # The acceptance criterion: all four disciplines, three seeds,
        # compiled == fast == reference, field for field.
        reference = _run(name, "reference", seed=seed)
        fast = _run(name, "fast", seed=seed)
        result = _run(name, "compiled", seed=seed)
        assert result == fast
        for field in dataclasses.fields(reference):
            assert getattr(result, field.name) == getattr(
                reference, field.name
            ), field.name

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_metrics_registries_equal(self, name):
        # Instrumented runs: the compiled backend produces the same
        # registry state as the fast kernel (the instrumented-kernel
        # contract the batch lanes already pin), and identical results.
        fast_registry = MetricsRegistry(enabled=True)
        fast = _run(name, "fast", metrics=fast_registry)
        compiled_registry = MetricsRegistry(enabled=True)
        result = _run(name, "compiled", metrics=compiled_registry)
        assert result == fast
        assert compiled_registry.to_dict() == fast_registry.to_dict()

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_stream_seeded_runs_match(self, name):
        # Unlike the batched lanes, the compiled backend drives the
        # simulator's own generator — RandomStreams construction stays
        # bit-identical too.
        reference = _run(name, "reference", seed=None, streams=RandomStreams(11))
        result = _run(name, "compiled", seed=None, streams=RandomStreams(11))
        assert result == reference

    @settings(
        deadline=None,
        max_examples=12,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_stations=st.one_of(
            st.integers(min_value=1, max_value=400),
            st.sampled_from([1_000, 10_000, 100_000]),
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_parity_over_ragged_station_counts(self, n_stations, seed):
        # Property: parity is population-independent — from a single
        # station to the 1e5 scaling arm, same fields either way.
        fast = _run("optimal", "fast", seed=seed, n_stations=n_stations)
        result = _run("optimal", "compiled", seed=seed, n_stations=n_stations)
        assert result == fast


class TestFallbackAndEligibility:
    def test_numpy_fallback_runs_with_logged_notice(self, caplog, monkeypatch):
        # With numba absent the backend must run the NumPy path and say
        # so once — never crash.  The probe is re-armed and the import
        # is forced to fail so the test is meaningful even when numba
        # happens to be installed.
        import builtins

        real_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba":
                raise ImportError("No module named 'numba'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numba)
        monkeypatch.setattr(compiled, "_PROBED", False)
        monkeypatch.setattr(compiled, "_JIT_WALK", None)
        with caplog.at_level(logging.INFO, logger=compiled.__name__):
            assert compiled.numba_available() is False
            result = _run("optimal", "compiled")
        assert "pure-NumPy" in caplog.text
        assert result == _run("optimal", "fast")

    def test_fallback_notice_logged_once(self, caplog, monkeypatch):
        monkeypatch.setattr(compiled, "_PROBED", False)
        monkeypatch.setattr(compiled, "_JIT_WALK", None)
        compiled._probe()
        with caplog.at_level(logging.INFO, logger=compiled.__name__):
            compiled._probe()
        assert "pure-NumPy" not in caplog.text

    def test_ineligible_run_falls_back_to_fast_chain(self):
        # A fault model makes the run ineligible for the compiled
        # backend; the dispatch must still complete via the fallback
        # chain with the same result the default path produces.
        from repro.faults import FaultModel

        fault = FaultModel.feedback_noise(0.05)
        via_compiled = _run("optimal", "compiled", fault_model=fault)
        default = _run("optimal", "auto", fault_model=fault)
        assert via_compiled == default

    def test_eligibility_gate(self):
        simulator = WindowMACSimulator(
            _policy("optimal"),
            arrival_rate=LAM,
            transmission_slots=M,
            deadline=DEADLINE,
            seed=1,
        )
        assert compiled.compiled_eligible(simulator)
        # The §5 priority extension is reference-loop territory.
        simulator.registry.set_window_scale(0, 0.5)
        assert not compiled.compiled_eligible(simulator)


@pytest.mark.compiled
class TestJittedWalk:
    """Run by the compiled-parity CI job (numba installed)."""

    def test_jitted_walk_matches_interpreted(self):
        pytest.importorskip("numba")
        assert compiled.numba_available()
        for name in PROTOCOLS:
            fast = _run(name, "fast", seed=3)
            result = _run(name, "compiled", seed=3)
            assert result == fast

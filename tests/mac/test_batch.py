"""Bit-parity of the batched replication kernel.

The contract under test (the tentpole of ISSUE 5): ``run_batch(specs)``
is **field-for-field identical** to ``[run_spec(s) for s in specs]``
for every spec — eligible specs ride the lane-parallel kernel, the rest
fall back transparently — and the sequential fast kernel is itself
bit-identical to the reference loop (the PR 2 guarantee), so all three
execution paths are pinned against each other here.  Grids are tiny:
the property is exact equality, not statistics.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ControlPolicy
from repro.experiments.sweep import (
    MACRunSpec,
    derive_seeds,
    run_spec,
    run_spec_with_metrics,
)
from repro.mac.batch import batch_eligible, run_batch, run_batch_with_metrics
from repro.resilience import invariants

M = 25
LAM = 0.5 / M

PROTOCOLS = ("optimal", "uncontrolled_fcfs", "uncontrolled_lcfs", "uncontrolled_random")


def _policy(name: str, deadline: float) -> ControlPolicy:
    if name == "optimal":
        return ControlPolicy.optimal(deadline, LAM)
    return getattr(ControlPolicy, name)(LAM)


def _spec(name: str, seed: int, **overrides) -> MACRunSpec:
    kwargs = dict(
        policy=_policy(name, 3.0 * M),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=4_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=seed,
    )
    kwargs.update(overrides)
    return MACRunSpec(**kwargs)


class TestBitParity:
    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_batched_equals_sequential_fast_and_reference(self, name):
        # All four disciplines, three seeds each: batched == fast ==
        # reference loop, field for field (the acceptance criterion).
        specs = [_spec(name, seed) for seed in (1, 7, 42)]
        fast = [run_spec(s) for s in specs]
        batched = run_batch(specs)
        reference = [
            run_spec(_spec(name, seed, fast=False)) for seed in (1, 7, 42)
        ]
        assert batched == fast
        assert batched == reference

    def test_mixed_arms_in_one_cohort(self):
        # Heterogeneous lanes (different arms, deadlines, horizons,
        # loss definitions) in a single call keep spec order.
        specs = [
            _spec("optimal", 3),
            _spec("uncontrolled_lcfs", 5, horizon=2_500.0),
            _spec("optimal", 3, deadline=1.0 * M, policy=_policy("optimal", 1.0 * M)),
            _spec("uncontrolled_fcfs", 9, loss_definition="paper"),
            _spec("uncontrolled_random", 2, transmission_slots=1),
        ]
        assert run_batch(specs) == [run_spec(s) for s in specs]

    def test_replicated_seeds_match_derive_seeds_loop(self):
        specs = [_spec("optimal", s) for s in derive_seeds(1, 8)]
        assert run_batch(specs) == [run_spec(s) for s in specs]

    def test_instrumented_parity_and_registry_equality(self):
        # The instrumented variant must reproduce both the results and
        # the exact per-run registry state of run_spec_with_metrics —
        # this is what makes batched sweep metrics merge-invariant.
        specs = [_spec(name, 11) for name in PROTOCOLS]
        sequential = [run_spec_with_metrics(s) for s in specs]
        batched = run_batch_with_metrics(specs)
        for (res_a, reg_a), (res_b, reg_b) in zip(sequential, batched):
            assert res_a == res_b
            assert reg_a == reg_b


class TestEligibilityAndFallback:
    def test_fast_false_is_ineligible_but_still_served(self):
        spec = _spec("optimal", 1, fast=False)
        assert not batch_eligible(spec)
        assert run_batch([spec, spec]) == [run_spec(spec)] * 2

    def test_stream_seed_is_ineligible(self):
        spec = _spec("optimal", 1, stream_seed=123)
        assert not batch_eligible(spec)
        assert run_batch([spec]) == [run_spec(spec)]

    def test_invariant_mode_disables_batching(self, monkeypatch):
        spec = _spec("optimal", 1)
        assert batch_eligible(spec)
        monkeypatch.setenv(invariants.INVARIANTS_ENV, "1")
        assert not batch_eligible(spec)

    def test_mixed_eligibility_preserves_order(self):
        specs = [
            _spec("optimal", 1),
            _spec("optimal", 2, fast=False),
            _spec("uncontrolled_fcfs", 3),
        ]
        assert run_batch(specs) == [run_spec(s) for s in specs]


# Ragged lane lifetimes: lanes with very different horizons (some dying
# many rounds before others), warmups, and sub-slot deadline fractions.
_spec_strategy = st.builds(
    lambda name, seed, horizon, warm_frac, dl_mult, m, loss: MACRunSpec(
        policy=_policy(name, dl_mult * m),
        arrival_rate=0.5 / m,
        transmission_slots=m,
        horizon=float(horizon),
        warmup=math.floor(horizon * warm_frac),
        n_stations=25,
        deadline=dl_mult * m,
        loss_definition=loss,
        seed=seed,
    ),
    name=st.sampled_from(PROTOCOLS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    horizon=st.integers(min_value=200, max_value=3_000),
    warm_frac=st.sampled_from([0.0, 0.1, 0.25]),
    dl_mult=st.sampled_from([0.5, 1.0, 3.0, 8.0]),
    m=st.sampled_from([1, 2, 25]),
    loss=st.sampled_from(["true", "paper"]),
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(specs=st.lists(_spec_strategy, min_size=1, max_size=6))
def test_property_random_cohorts_are_bit_identical(specs):
    assert run_batch(specs) == [run_spec(s) for s in specs]

"""Bit-parity of antithetic lanes across every execution backend.

The ISSUE 10 contract: flipping ``MACRunSpec.antithetic`` wraps the
simulator's generator in the uniform-mirroring twin at the same
pre-draw point on every backend, so the reference loop, the fast
kernel, the batched lane kernel and the compiled walk all produce the
**same** mirrored result — bit for bit — and a mirrored lane genuinely
differs from its plain twin (it is a second sample path, not a replay).
"""

import pytest

from repro.core import ControlPolicy
from repro.experiments.sweep import MACRunSpec, run_spec
from repro.mac.batch import run_batch

M = 25
LAM = 0.5 / M

PROTOCOLS = ("optimal", "uncontrolled_fcfs", "uncontrolled_lcfs")


def _policy(name: str) -> ControlPolicy:
    if name == "optimal":
        return ControlPolicy.optimal(3.0 * M, LAM)
    return getattr(ControlPolicy, name)(LAM)


def _spec(name: str, **overrides) -> MACRunSpec:
    kwargs = dict(
        policy=_policy(name),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=4_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=11,
        antithetic=True,
    )
    kwargs.update(overrides)
    return MACRunSpec(**kwargs)


class TestAntitheticParity:
    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_all_backends_agree_on_the_mirrored_lane(self, name):
        fast = run_spec(_spec(name))
        reference = run_spec(_spec(name, fast=False))
        compiled = run_spec(_spec(name, backend="compiled"))
        [batched] = run_batch([_spec(name)])
        assert fast == reference
        assert fast == compiled
        assert fast == batched

    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_mirrored_lane_differs_from_plain(self, name):
        plain = run_spec(_spec(name, antithetic=False))
        mirrored = run_spec(_spec(name))
        assert plain != mirrored

    def test_mirrored_lane_is_reproducible(self):
        assert run_spec(_spec("optimal")) == run_spec(_spec("optimal"))

    def test_mixed_plain_and_mirrored_lanes_in_one_cohort(self):
        # The batch kernel wraps per lane, so a CRN pair (plain,
        # mirrored) in one cohort matches the per-run path lane by lane.
        specs = [
            _spec("optimal", antithetic=False),
            _spec("optimal"),
            _spec("uncontrolled_fcfs", antithetic=False),
            _spec("uncontrolled_fcfs"),
        ]
        assert run_batch(specs) == [run_spec(s) for s in specs]

    def test_stream_seed_construction_also_mirrors(self):
        # The RandomStreams construction (robustness sweeps) honours
        # the flag too, via RandomStreams(antithetic=...).
        spec = _spec("optimal", seed=0, stream_seed=11)
        assert run_spec(spec) == run_spec(
            _spec("optimal", seed=0, stream_seed=11, fast=False)
        )
        assert run_spec(spec) != run_spec(
            _spec("optimal", seed=0, stream_seed=11, antithetic=False)
        )

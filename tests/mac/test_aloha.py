"""Tests for the slotted-ALOHA extension baseline."""

import pytest

from repro.mac import SlottedAlohaSimulator


class TestValidation:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SlottedAlohaSimulator(0.0, 25, 100.0)

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            SlottedAlohaSimulator(0.01, 0, 100.0)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            SlottedAlohaSimulator(0.01, 25, 0.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            SlottedAlohaSimulator(0.01, 25, 100.0, retransmission_probability=0.0)


class TestBehaviour:
    def test_counts_consistent(self):
        sim = SlottedAlohaSimulator(0.005, 25, 200.0, seed=1)
        result = sim.run(60_000.0, warmup_slots=5_000.0)
        accounted = (
            result.delivered_on_time
            + result.delivered_late
            + result.discarded
            + result.unresolved
        )
        assert accounted == result.arrivals
        assert 0.0 <= result.loss_fraction <= 1.0

    def test_light_load_mostly_on_time(self):
        sim = SlottedAlohaSimulator(0.002, 25, 500.0, seed=2)
        result = sim.run(80_000.0, warmup_slots=5_000.0)
        assert result.loss_fraction < 0.1

    def test_throughput_below_offered_load(self):
        """Overloaded ALOHA sheds traffic: served < offered (ρ′ = 0.75).

        Note the classic 1/e bound applies only at large backlogs; with
        deadline shedding the backlog stays small and p = 1/n succeeds
        more often, so throughput may exceed 1/e but never the offer.
        """
        sim = SlottedAlohaSimulator(0.03, 25, 200.0, seed=3, adaptive=True)
        result = sim.run(60_000.0)
        assert result.throughput < 0.75
        assert result.loss_fraction > 0.2  # heavy shedding under overload

    def test_adaptive_beats_badly_tuned_fixed_p(self):
        adaptive = SlottedAlohaSimulator(0.012, 25, 300.0, seed=4, adaptive=True)
        fixed = SlottedAlohaSimulator(
            0.012, 25, 300.0, seed=4, adaptive=False,
            retransmission_probability=0.9,
        )
        a = adaptive.run(60_000.0, warmup_slots=5_000.0)
        b = fixed.run(60_000.0, warmup_slots=5_000.0)
        assert a.loss_fraction < b.loss_fraction

    def test_discard_stale_off_keeps_backlog(self):
        sim = SlottedAlohaSimulator(0.02, 25, 100.0, seed=5, discard_stale=False)
        result = sim.run(30_000.0)
        assert result.discarded == 0

"""The shared kernel primitive layer (ISSUE 7 unification).

Pins the structural claim behind the tentpole: the reference loop, the
fast kernel, and the batched lanes all *consume the same primitives* —
one split implementation, one examination-order rule, one epoch
executor, one fast-forward — so a protocol-semantics change lands in
exactly one place.  Also holds the large-population startup guarantee:
simulator construction is O(1) in ``n_stations`` (the lazy
struct-of-arrays registry), checked under a time/memory budget and by
the ``REPRO_CHECK_INVARIANTS`` structural guard.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.core import ControlPolicy
from repro.core import splits as core_splits
from repro.core import window as core_window
from repro.core.timeline import Span
from repro.mac import batch, fastpath
from repro.mac.kernels import lane, primitives
from repro.mac.simulator import WindowMACSimulator
from repro.mac.station import StationRegistry
from repro.resilience import invariants

M = 25
LAM = 0.5 / M


class TestUnifiedPrimitives:
    def test_reference_loop_splits_via_shared_primitives(self):
        # The reference windowing machinery delegates to the canonical
        # split: the compat alias in core.window IS core.splits'.
        assert core_window._split_parts is core_splits.split_parts

    def test_fast_kernel_reuses_primitive_layer(self):
        # The fast kernel's epoch executor, fast-forward, and context
        # are re-exports of repro.mac.kernels.primitives — not copies.
        assert fastpath._execute_epoch is primitives.execute_epoch
        assert fastpath._try_fast_forward is primitives.try_fast_forward
        assert fastpath._EpochContext is primitives.EpochContext
        assert fastpath._ObsBuffers is primitives.ObsBuffers

    def test_batch_kernel_reuses_lane_machinery(self):
        # The batched lanes are the shared LaneState driven by the
        # shared round driver.
        assert issubclass(batch._Lane, lane.LaneState)
        assert batch._advance is lane.drive

    def test_examination_order_covers_all_split_rules(self):
        rng = np.random.default_rng(3)
        assert list(core_splits.examination_order("older", 3, rng)) == [0, 1, 2]
        assert list(core_splits.examination_order("newer", 3, rng)) == [2, 1, 0]
        random_order = core_splits.examination_order("random", 3, rng)
        assert sorted(random_order) == [0, 1, 2]
        with pytest.raises(ValueError):
            core_splits.examination_order("random", 2, None)

    def test_split_parts_cuts_at_equal_measures(self):
        parts = core_splits.split_parts(Span(((0.0, 6.0),)), 3)
        assert [part.pieces for part in parts] == [
            ((0.0, 2.0),),
            ((2.0, 4.0),),
            ((4.0, 6.0),),
        ]


class TestLinearStartup:
    def test_registry_construction_is_population_independent(self):
        # O(1): building a 1e5-station registry allocates no per-station
        # state.  Generous budgets (time well under the ~seconds a
        # linear object build took; memory well under one float per
        # station) still catch an O(n) regression by orders of
        # magnitude.
        tracemalloc.start()
        start = time.perf_counter()
        registry = StationRegistry(100_000)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert elapsed < 0.05
        assert peak < 100_000  # bytes: far below 8 B/station
        assert registry.n_stations == 100_000
        assert len(registry.stations) == 100_000
        assert registry.stations[99_999].window_scale == 1.0

    def test_simulator_construction_budget_at_1e5_stations(self):
        start = time.perf_counter()
        simulator = WindowMACSimulator(
            ControlPolicy.optimal(3.0 * M, LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            n_stations=100_000,
            deadline=3.0 * M,
            seed=1,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5
        assert simulator.registry.n_stations == 100_000

    def test_scale_column_allocates_lazily_and_checks_invariants(
        self, monkeypatch
    ):
        monkeypatch.setenv(invariants.INVARIANTS_ENV, "1")
        registry = StationRegistry(1_000)
        registry.check_invariants()
        assert registry._scales is None
        registry.set_window_scale(7, 0.5)
        assert registry.has_scaled_stations
        registry.check_invariants()
        # Corrupt the counter: the structural guard must catch it.
        registry._n_scaled = 5
        with pytest.raises(invariants.InvariantViolation):
            registry.check_invariants()

    def test_constructor_runs_registry_invariants_when_enabled(
        self, monkeypatch
    ):
        monkeypatch.setenv(invariants.INVARIANTS_ENV, "1")
        simulator = WindowMACSimulator(
            ControlPolicy.optimal(3.0 * M, LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            n_stations=500,
            deadline=3.0 * M,
            seed=1,
        )
        assert simulator.registry.n_stations == 500

"""Faulted-kernel bit-parity: the fast kernel under feedback faults.

Enforcement arm of the faulted fast path's contract
(`repro.mac.kernels.faults`): for every common-mode feedback fault
family — misdetection noise, capture, fade, erasure, per-station missed
feedback under each divergence-recovery policy, jamming, and their
combination — a faulted fast run must reproduce the faulted reference
loop field for field: the ``MACSimResult``, the ``FaultTelemetry``
(excluded from the dataclass ``==``, so compared explicitly), and the
metrics registry snapshot, across all four Figure-7 protocols.

Event-fault families (missed feedback, jamming) never fast-forward, so
their registries match the reference in full.  Noise-only families ride
the scan-gated idle fast-forward, which elides idle examination epochs
exactly as the fault-free fast path does — the epoch-granularity names
(``mac.epochs``, ``mac.backlog.size``, ``mac.window.size``) and the
``mac.fastforward.*`` accounts are the documented carve-out (see
``tests/mac/test_obs_parity.py``); everything else matches in full.

A null ``FeedbackFaultModel`` must collapse to today's fault-free
kernels bit-for-bit, and a hypothesis property sweeps randomly drawn
fault schedules through the same contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ControlPolicy
from repro.des.rng import RandomStreams
from repro.faults import FaultModel, FeedbackFaultModel, RECOVERY_POLICIES
from repro.mac import WindowMACSimulator
from repro.mac.batch import batch_eligible
from repro.mac.kernels.compiled import compiled_eligible
from repro.obs.metrics import MetricsRegistry

M = 25
DEADLINE = 3.0 * M
LAM = 0.5 / M
HORIZON = 2_500.0
WARMUP = 400.0

#: One representative model per fault family (plus recovery variants).
FAULT_FAMILIES = {
    "noise": FeedbackFaultModel.noise(0.02),
    "capture": FeedbackFaultModel(p_collision_as_success=0.05),
    "fade": FeedbackFaultModel(p_success_as_idle=0.05),
    "erasure": FeedbackFaultModel(p_erasure=0.03),
    "miss-reset": FeedbackFaultModel(miss_rate=0.002),
    "miss-gated": FeedbackFaultModel(miss_rate=0.002, recovery="gated-rejoin"),
    "miss-drop": FeedbackFaultModel(miss_rate=0.002, recovery="drop-out"),
    "jam": FeedbackFaultModel(jam_rate=0.001),
    "combined": FeedbackFaultModel(
        p_erasure=0.02,
        p_collision_as_success=0.02,
        p_success_as_idle=0.02,
        miss_rate=0.001,
        jam_rate=0.0005,
        recovery="gated-rejoin",
    ),
}

PROTOCOLS = ["controlled", "fcfs", "lcfs", "random"]

#: Epoch-granularity registry names that legitimately differ between the
#: fast kernel and the reference loop whenever the idle fast-forward can
#: fire (noise-only fault models): elided idle examinations are
#: accounted under ``mac.fastforward.*`` instead of per-epoch records.
EPOCH_GRANULARITY = frozenset(
    {
        "mac.epochs",
        "mac.backlog.size",
        "mac.window.size",
        "mac.fastforward.spans",
        "mac.fastforward.slots",
        "mac.fastforward.span",
    }
)


def _policy(name: str) -> ControlPolicy:
    if name == "controlled":
        return ControlPolicy.optimal(DEADLINE, LAM)
    return getattr(ControlPolicy, f"uncontrolled_{name}")(LAM)


def _run(protocol, *, backend, faults=None, seed=None, streams=None,
         metrics=None, horizon=HORIZON, warmup=WARMUP):
    simulator = WindowMACSimulator(
        _policy(protocol),
        arrival_rate=LAM,
        transmission_slots=M,
        n_stations=25,
        deadline=DEADLINE,
        backend=backend,
        metrics=metrics,
        feedback_faults=faults,
        **({"streams": streams} if streams is not None else {"seed": seed}),
    )
    return simulator.run(horizon, warmup_slots=warmup)


def _assert_parity(protocol, faults, seed, horizon=HORIZON, warmup=WARMUP):
    ref_metrics, fast_metrics = MetricsRegistry(), MetricsRegistry()
    ref = _run(protocol, backend="reference", faults=faults, seed=seed,
               metrics=ref_metrics, horizon=horizon, warmup=warmup)
    fast = _run(protocol, backend="fast", faults=faults, seed=seed,
                metrics=fast_metrics, horizon=horizon, warmup=warmup)
    assert fast == ref
    assert fast.faults == ref.faults
    ref_snap, fast_snap = ref_metrics.to_dict(), fast_metrics.to_dict()
    if faults.has_events:
        # Event clocks pin the kernel to the slot walk: full equality.
        assert fast_snap == ref_snap
    else:
        carve = EPOCH_GRANULARITY
        assert {k: v for k, v in fast_snap.items() if k not in carve} == {
            k: v for k, v in ref_snap.items() if k not in carve
        }
    return ref, fast


class TestFaultedParity:
    @pytest.mark.parametrize("family", sorted(FAULT_FAMILIES))
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_fast_equals_reference(self, protocol, family, seed):
        ref, _ = _assert_parity(protocol, FAULT_FAMILIES[family], seed)
        assert ref.faults is not None

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_random_streams_seeding(self, protocol):
        """The RandomStreams construction drives the same contract
        through the dedicated ``"faults"`` substream."""
        faults = FAULT_FAMILIES["combined"]
        ref = _run(protocol, backend="reference", faults=faults,
                   streams=RandomStreams(11))
        fast = _run(protocol, backend="fast", faults=faults,
                    streams=RandomStreams(11))
        assert fast == ref
        assert fast.faults == ref.faults

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_null_model_equals_fault_free_run(self, protocol):
        """FeedbackFaultModel.none() exercises the faulted loops, whose
        physics must collapse to the fault-free kernels bit-for-bit."""
        null_ref, null_fast = _assert_parity(
            protocol, FeedbackFaultModel.none(), seed=3
        )
        clean = _run(protocol, backend="fast", seed=3)
        assert null_fast == clean
        assert null_ref == clean

    def test_zero_fault_dispatch_unchanged(self):
        """Without a feedback fault model nothing routes through the
        faulted kernels: auto dispatch reproduces today's results."""
        auto = _run("controlled", backend=None, seed=9)
        fast = _run("controlled", backend="fast", seed=9)
        ref = _run("controlled", backend="reference", seed=9)
        assert auto == fast == ref

    @settings(max_examples=12, deadline=None)
    @given(
        p_capture=st.floats(0.0, 0.15),
        p_fade=st.floats(0.0, 0.15),
        p_erasure=st.floats(0.0, 0.1),
        miss_rate=st.floats(0.0, 0.004),
        jam_rate=st.floats(0.0, 0.002),
        recovery=st.sampled_from(RECOVERY_POLICIES),
        seed=st.integers(0, 2**16),
    )
    def test_random_fault_schedules(
        self, p_capture, p_fade, p_erasure, miss_rate, jam_rate, recovery, seed
    ):
        faults = FeedbackFaultModel(
            p_collision_as_success=p_capture,
            p_success_as_idle=p_fade,
            p_erasure=p_erasure,
            miss_rate=miss_rate,
            jam_rate=jam_rate,
            recovery=recovery,
        )
        _assert_parity("controlled", faults, seed, horizon=1_000.0,
                       warmup=200.0)


class TestDispatch:
    def test_fault_model_and_feedback_faults_are_exclusive(self):
        with pytest.raises(ValueError, match="feedback_faults"):
            WindowMACSimulator(
                _policy("controlled"),
                arrival_rate=LAM,
                transmission_slots=M,
                deadline=DEADLINE,
                seed=1,
                fault_model=FaultModel.none(),
                feedback_faults=FeedbackFaultModel.none(),
            )

    def test_compiled_ineligible_under_feedback_faults(self):
        simulator = WindowMACSimulator(
            _policy("controlled"),
            arrival_rate=LAM,
            transmission_slots=M,
            deadline=DEADLINE,
            seed=1,
            feedback_faults=FAULT_FAMILIES["noise"],
        )
        assert not compiled_eligible(simulator)

    def test_batch_ineligible_under_feedback_faults(self):
        from repro.experiments.sweep import MACRunSpec

        spec = MACRunSpec(
            policy=_policy("controlled"),
            arrival_rate=LAM,
            transmission_slots=M,
            horizon=HORIZON,
            warmup=WARMUP,
            deadline=DEADLINE,
            seed=1,
            feedback_faults=FAULT_FAMILIES["noise"],
        )
        assert not batch_eligible(spec)

    def test_spec_rejects_both_fault_layers(self):
        from repro.experiments.sweep import MACRunSpec

        with pytest.raises(ValueError, match="feedback_faults"):
            MACRunSpec(
                policy=_policy("controlled"),
                arrival_rate=LAM,
                transmission_slots=M,
                horizon=HORIZON,
                warmup=WARMUP,
                deadline=DEADLINE,
                seed=1,
                fault_model=FaultModel.none(),
                feedback_faults=FeedbackFaultModel.none(),
            )

    def test_compiled_request_downgrades_and_counts(self):
        """backend="compiled" on a faulted run lands on the faulted fast
        kernel (same result as reference) and counts the downgrade."""
        metrics = MetricsRegistry()
        downgraded = _run("controlled", backend="compiled",
                          faults=FAULT_FAMILIES["noise"], seed=5,
                          metrics=metrics)
        ref = _run("controlled", backend="reference",
                   faults=FAULT_FAMILIES["noise"], seed=5)
        assert downgraded == ref
        assert metrics.value("kernel.fallbacks") == 1

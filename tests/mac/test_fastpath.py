"""Golden-seed regression: the fast kernel is bit-identical to the slow path.

These tests are the enforcement arm of the fast path's contract
(`repro.mac.fastpath`): for every eligible run the fast kernel must
reproduce the reference loop's `MACSimResult` field for field — same RNG
draw order, same float arithmetic — across all four Figure-7 protocols,
with and without a zero-rate fault model, under bursty workloads, and at
loads where the idle fast-forward fires constantly (ρ′ = 0.25) or almost
never (ρ′ = 0.8).
"""

import pytest

from repro.core import ControlPolicy
from repro.des.rng import RandomStreams
from repro.faults import FaultModel
from repro.mac import WindowMACSimulator
from repro.mac.fastpath import fast_path_available
from repro.workloads import MMPPWorkload

M = 25
HORIZON = 12_000.0
WARMUP = 2_000.0


def _policy(name: str, lam: float, deadline: float) -> ControlPolicy:
    if name == "controlled":
        return ControlPolicy.optimal(deadline, lam)
    return getattr(ControlPolicy, f"uncontrolled_{name}")(lam)


def _run(policy, lam, *, fast, seed=None, streams=None, fault_model=None,
         workload=None):
    simulator = WindowMACSimulator(
        policy,
        arrival_rate=lam,
        transmission_slots=M,
        n_stations=25,
        deadline=3.0 * M,
        fast=fast,
        workload=workload,
        fault_model=fault_model,
        **({"streams": streams} if streams is not None else {"seed": seed}),
    )
    result = simulator.run(HORIZON, warmup_slots=WARMUP)
    return simulator, result


@pytest.mark.parametrize("protocol", ["controlled", "fcfs", "lcfs", "random"])
@pytest.mark.parametrize("rho_prime", [0.25, 0.8])
@pytest.mark.parametrize("seed", [1, 42])
def test_fast_equals_slow_golden_seed(protocol, rho_prime, seed):
    lam = rho_prime / M
    policy = _policy(protocol, lam, 3.0 * M)
    _, slow = _run(policy, lam, fast=False, seed=seed)
    _, fast = _run(policy, lam, fast=True, seed=seed)
    assert fast == slow


@pytest.mark.parametrize("protocol", ["controlled", "random"])
def test_fast_equals_zero_rate_fault_model(protocol):
    """The replica path under FaultModel.none() is the shared path, which
    in turn is the fast kernel: all three agree bit-for-bit."""
    lam = 0.5 / M
    policy = _policy(protocol, lam, 3.0 * M)
    _, with_faults = _run(
        policy, lam, fast=True, streams=RandomStreams(5),
        fault_model=FaultModel.none(),
    )
    _, fast = _run(policy, lam, fast=True, streams=RandomStreams(5))
    assert fast == with_faults


def test_fast_equals_slow_under_bursty_workload():
    lam = 0.5 / M
    policy = _policy("controlled", lam, 3.0 * M)

    def workload():
        return MMPPWorkload(
            low_rate=0.005, high_rate=0.04, mean_low=1200.0, mean_high=400.0
        )

    _, slow = _run(policy, lam, fast=False, seed=9, workload=workload())
    _, fast = _run(policy, lam, fast=True, seed=9, workload=workload())
    assert fast == slow


def test_scored_messages_identical():
    lam = 0.5 / M
    policy = _policy("controlled", lam, 3.0 * M)
    sim_slow, _ = _run(policy, lam, fast=False, seed=3)
    sim_fast, _ = _run(policy, lam, fast=True, seed=3)
    assert len(sim_fast.scored_messages) == len(sim_slow.scored_messages)
    for a, b in zip(sim_slow.scored_messages, sim_fast.scored_messages):
        assert (a.arrival, a.station, a.fate, a.tx_start, a.process_start) == (
            b.arrival, b.station, b.fate, b.tx_start, b.process_start
        )


def test_escape_hatch_forces_reference_loop():
    lam = 0.25 / M
    policy = _policy("controlled", lam, 3.0 * M)
    simulator = WindowMACSimulator(
        policy, arrival_rate=lam, transmission_slots=M, n_stations=25,
        deadline=3.0 * M, seed=1, fast=False,
    )
    assert simulator.fast is False
    assert fast_path_available(simulator)  # eligible, but opted out


def test_fast_path_declines_priority_stations():
    lam = 0.25 / M
    policy = _policy("controlled", lam, 3.0 * M)
    simulator = WindowMACSimulator(
        policy, arrival_rate=lam, transmission_slots=M, n_stations=25,
        deadline=3.0 * M, seed=1,
    )
    simulator.registry.set_window_scale(3, 0.5)
    assert not fast_path_available(simulator)
    simulator.registry.set_window_scale(3, 1.0)
    assert fast_path_available(simulator)


def test_fast_path_declines_fault_models():
    lam = 0.25 / M
    policy = _policy("controlled", lam, 3.0 * M)
    simulator = WindowMACSimulator(
        policy, arrival_rate=lam, transmission_slots=M, n_stations=25,
        deadline=3.0 * M, streams=RandomStreams(1),
        fault_model=FaultModel.feedback_noise(0.01),
    )
    assert not fast_path_available(simulator)

"""Tests for message records and waiting-time definitions."""

import pytest

from repro.mac import Message, MessageFate


class TestWaits:
    def make(self):
        message = Message(arrival=10.0, station=3, uid=7)
        message.process_start = 25.0
        message.tx_start = 31.0
        return message

    def test_true_wait(self):
        assert self.make().true_wait == pytest.approx(21.0)

    def test_paper_wait_excludes_own_scheduling(self):
        message = self.make()
        assert message.paper_wait == pytest.approx(15.0)
        assert message.paper_wait < message.true_wait

    def test_paper_wait_clamped_nonnegative(self):
        """A message arriving *during* someone else's windowing process
        can have process_start < arrival; its paper wait is 0."""
        message = Message(arrival=10.0, station=0, uid=0)
        message.process_start = 8.0
        message.tx_start = 12.0
        assert message.paper_wait == 0.0

    def test_untransmitted_wait_raises(self):
        message = Message(arrival=1.0, station=0, uid=0)
        with pytest.raises(ValueError):
            message.true_wait
        with pytest.raises(ValueError):
            message.paper_wait

    def test_wait_dispatch(self):
        message = self.make()
        assert message.wait("true") == message.true_wait
        assert message.wait("paper") == message.paper_wait
        with pytest.raises(ValueError):
            message.wait("wishful")


class TestFate:
    def test_default_pending(self):
        assert Message(arrival=0.0, station=0, uid=0).fate is MessageFate.PENDING

    def test_fates_enumerated(self):
        names = {fate.value for fate in MessageFate}
        assert names == {
            "pending",
            "delivered_on_time",
            "delivered_late",
            "discarded_at_sender",
            "lost_to_fault",
        }

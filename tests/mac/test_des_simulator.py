"""Cross-validation of the two MAC simulation engines.

The slot-count loop (`WindowMACSimulator`) and the event-driven
implementation (`DESWindowMACSimulator`) share the protocol code but not
the time-advance machinery; statistical agreement between them validates
both.
"""

import pytest

from repro.core import ControlPolicy
from repro.mac import DESWindowMACSimulator, MessageFate, WindowMACSimulator


def run_both(policy_factory, lam=0.03, m=25, deadline=75.0, horizon=80_000.0,
             seed=3):
    des = DESWindowMACSimulator(
        policy_factory(), lam, m, deadline=deadline, seed=seed
    )
    slot = WindowMACSimulator(
        policy_factory(), lam, m, deadline=deadline, seed=seed
    )
    return (
        des.run(horizon, warmup_slots=horizon * 0.1),
        slot.run(horizon, warmup_slots=horizon * 0.1),
    )


class TestValidation:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            DESWindowMACSimulator(
                ControlPolicy.uncontrolled_fcfs(0.02), 0.0, 25
            )

    def test_invalid_loss_definition(self):
        with pytest.raises(ValueError):
            DESWindowMACSimulator(
                ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25,
                loss_definition="vibes",
            )

    def test_invalid_horizon(self):
        des = DESWindowMACSimulator(
            ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25
        )
        with pytest.raises(ValueError):
            des.run(0.0)


class TestEngineAgreement:
    def test_controlled_protocol(self):
        lam = 0.03
        des, slot = run_both(lambda: ControlPolicy.optimal(75.0, lam), lam=lam)
        tolerance = 5 * (des.loss_stderr() + slot.loss_stderr())
        assert abs(des.loss_fraction - slot.loss_fraction) <= tolerance
        assert des.channel.utilization() == pytest.approx(
            slot.channel.utilization(), abs=0.02
        )
        assert des.mean_true_wait == pytest.approx(slot.mean_true_wait, rel=0.15)

    def test_uncontrolled_fcfs(self):
        lam = 0.02
        des, slot = run_both(
            lambda: ControlPolicy.uncontrolled_fcfs(lam),
            lam=lam, deadline=150.0,
        )
        tolerance = max(0.01, 5 * (des.loss_stderr() + slot.loss_stderr()))
        assert abs(des.loss_fraction - slot.loss_fraction) <= tolerance

    def test_counts_conserved_in_des_engine(self):
        lam = 0.03
        des, _ = run_both(lambda: ControlPolicy.optimal(75.0, lam), lam=lam,
                          horizon=30_000.0)
        accounted = (
            des.delivered_on_time + des.delivered_late + des.discarded
            + des.unresolved
        )
        assert accounted == des.arrivals

    def test_des_engine_reproducible(self):
        lam = 0.03
        a = DESWindowMACSimulator(
            ControlPolicy.optimal(75.0, lam), lam, 25, deadline=75.0, seed=9
        ).run(20_000.0)
        b = DESWindowMACSimulator(
            ControlPolicy.optimal(75.0, lam), lam, 25, deadline=75.0, seed=9
        ).run(20_000.0)
        assert a.loss_fraction == b.loss_fraction
        assert a.arrivals == b.arrivals

"""Tests for stations and the global backlog registry."""

import pytest

from repro.core import Span
from repro.mac import Message, Station, StationRegistry


def msg(arrival, station=0, uid=0):
    return Message(arrival=arrival, station=station, uid=uid)


class TestStation:
    def test_valid_scale(self):
        Station(0, window_scale=0.5)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Station(0, window_scale=0.0)
        with pytest.raises(ValueError):
            Station(0, window_scale=1.5)


class TestRegistry:
    def test_needs_stations(self):
        with pytest.raises(ValueError):
            StationRegistry(0)

    def test_ingest_in_order(self):
        registry = StationRegistry(4)
        registry.ingest(msg(1.0, uid=1))
        registry.ingest(msg(2.0, uid=2))
        assert len(registry) == 2

    def test_ingest_out_of_order_rejected(self):
        registry = StationRegistry(4)
        registry.ingest(msg(2.0))
        with pytest.raises(ValueError):
            registry.ingest(msg(1.0))

    def test_messages_in_span(self):
        registry = StationRegistry(4)
        for i, t in enumerate((0.5, 1.5, 2.5, 3.5)):
            registry.ingest(msg(t, uid=i))
        found = registry.messages_in_span(Span(((1.0, 3.0),)))
        assert [m.arrival for m in found] == [1.5, 2.5]

    def test_messages_in_gapped_span(self):
        registry = StationRegistry(4)
        for i, t in enumerate((0.5, 1.5, 2.5, 3.5)):
            registry.ingest(msg(t, uid=i))
        found = registry.messages_in_span(Span(((0.0, 1.0), (3.0, 4.0))))
        assert [m.arrival for m in found] == [0.5, 3.5]

    def test_enabled_stations_one_per_station(self):
        registry = StationRegistry(4)
        registry.ingest(msg(1.0, station=2, uid=1))
        registry.ingest(msg(2.0, station=2, uid=2))
        registry.ingest(msg(3.0, station=1, uid=3))
        enabled = registry.enabled_stations(Span(((0.0, 5.0),)))
        assert set(enabled) == {1, 2}
        assert enabled[2].arrival == 1.0  # station sends its oldest message

    def test_remove(self):
        registry = StationRegistry(4)
        a, b = msg(1.0, uid=1), msg(2.0, uid=2)
        registry.ingest(a)
        registry.ingest(b)
        registry.remove(a)
        assert len(registry) == 1
        with pytest.raises(ValueError):
            registry.remove(a)

    def test_drop_older_than(self):
        registry = StationRegistry(4)
        for i, t in enumerate((0.5, 1.5, 2.5)):
            registry.ingest(msg(t, uid=i))
        dropped = registry.drop_older_than(2.0)
        assert [m.arrival for m in dropped] == [0.5, 1.5]
        assert len(registry) == 1

    def test_oldest_pending(self):
        registry = StationRegistry(4)
        assert registry.oldest_pending() is None
        registry.ingest(msg(1.0, uid=1))
        registry.ingest(msg(2.0, uid=2))
        assert registry.oldest_pending().arrival == 1.0

    def test_priority_scale_excludes_young_prefix(self):
        """A half-scale station only joins for the oldest half of the
        initial window (eligibility decided once per process)."""
        registry = StationRegistry(2)
        registry.set_window_scale(1, 0.5)
        assert registry.has_scaled_stations
        registry.ingest(msg(1.0, station=0, uid=1))  # old, full-scale
        registry.ingest(msg(9.0, station=1, uid=2))  # young, half-scale
        eligible = registry.eligible_for_window(Span(((0.0, 10.0),)))
        # station 1's message sits in the youngest half: not eligible
        assert set(eligible) == {0}

    def test_priority_scale_includes_old_messages(self):
        registry = StationRegistry(2)
        registry.set_window_scale(1, 0.5)
        registry.ingest(msg(1.0, station=1, uid=1))  # old: inside prefix
        eligible = registry.eligible_for_window(Span(((0.0, 10.0),)))
        assert set(eligible) == {1}

    def test_unscaled_registry_fast_path(self):
        registry = StationRegistry(2)
        assert not registry.has_scaled_stations
        registry.ingest(msg(1.0, station=0, uid=1))
        eligible = registry.eligible_for_window(Span(((0.0, 10.0),)))
        assert set(eligible) == {0}

"""Three-way parity: reference loop, fast kernel, and metrics counters.

The observability layer's hard rule is that instrumentation never
changes physics, and its counters never disagree with the result they
describe.  For every protocol this test runs the same seeded cell four
ways — {reference loop, fast kernel} x {with, without metrics} — and
asserts that

* all four runs return bit-identical ``MACSimResult``;
* the ``mac.slots.*`` counters equal the ``ChannelStats`` fields
  exactly (no float drift: they are copied, not re-derived), and hence
  reproduce ``ChannelStats.breakdown()`` exactly;
* the message-outcome counters equal the result's message ledger.

Epoch-granularity histograms (``mac.epochs``, ``mac.backlog.size``)
legitimately differ between the two paths — the fast kernel's idle
fast-forward elides empty epochs and accounts them under
``mac.fastforward.*`` instead — so they are exactly the names this
test does *not* compare across paths.
"""

import pytest

from repro.core import ControlPolicy
from repro.mac import WindowMACSimulator
from repro.obs.metrics import MetricsRegistry

M = 25
HORIZON = 9_000.0
WARMUP = 1_500.0
LAM = 0.5 / M
DEADLINE = 3.0 * M

SLOT_COUNTERS = {
    "mac.slots.idle": "idle_slots",
    "mac.slots.collision": "collision_slots",
    "mac.slots.transmission": "transmission_slots",
    "mac.slots.wait": "wait_slots",
}
MESSAGE_COUNTERS = {
    "mac.messages.arrivals": "arrivals",
    "mac.messages.on_time": "delivered_on_time",
    "mac.messages.late": "delivered_late",
    "mac.messages.discarded": "discarded",
    "mac.messages.unresolved": "unresolved",
    "mac.messages.lost_to_faults": "lost_to_faults",
}


def _policy(name: str) -> ControlPolicy:
    if name == "controlled":
        return ControlPolicy.optimal(DEADLINE, LAM)
    return getattr(ControlPolicy, f"uncontrolled_{name}")(LAM)


def _run(protocol: str, *, fast: bool, metrics=None):
    simulator = WindowMACSimulator(
        _policy(protocol),
        arrival_rate=LAM,
        transmission_slots=M,
        n_stations=25,
        deadline=DEADLINE,
        seed=7,
        fast=fast,
        metrics=metrics,
    )
    return simulator.run(HORIZON, warmup_slots=WARMUP)


@pytest.mark.parametrize("protocol", ["controlled", "fcfs", "lcfs", "random"])
def test_result_identical_with_and_without_metrics(protocol):
    runs = {
        (fast, instrumented): _run(
            protocol,
            fast=fast,
            metrics=MetricsRegistry() if instrumented else None,
        )
        for fast in (False, True)
        for instrumented in (False, True)
    }
    baseline = runs[(False, False)]
    for key, result in runs.items():
        assert result == baseline, f"run {key} diverged from the reference"


@pytest.mark.parametrize("protocol", ["controlled", "fcfs", "lcfs", "random"])
@pytest.mark.parametrize("fast", [False, True])
def test_metrics_counters_match_channel_stats_exactly(protocol, fast):
    metrics = MetricsRegistry()
    result = _run(protocol, fast=fast, metrics=metrics)
    stats = result.channel

    for name, field in SLOT_COUNTERS.items():
        assert metrics.value(name) == getattr(stats, field), name
    for name, field in MESSAGE_COUNTERS.items():
        assert metrics.value(name) == getattr(result, field), name
    assert metrics.value("mac.runs") == 1

    # Re-deriving breakdown() from the counters reproduces it exactly.
    total = sum(metrics.value(name) for name in SLOT_COUNTERS)
    rebuilt = {
        key: metrics.value(f"mac.slots.{key}") / total
        for key in ("idle", "collision", "transmission", "wait")
    }
    assert rebuilt == stats.breakdown()


@pytest.mark.parametrize("protocol", ["controlled", "fcfs"])
def test_fast_path_accounts_elided_epochs(protocol):
    """Fast-forward spans explain the epoch-count gap between the paths."""
    slow_metrics, fast_metrics = MetricsRegistry(), MetricsRegistry()
    _run(protocol, fast=False, metrics=slow_metrics)
    _run(protocol, fast=True, metrics=fast_metrics)

    # Slot counters agree across paths even though epoch histograms don't.
    for name in SLOT_COUNTERS:
        assert fast_metrics.value(name) == slow_metrics.value(name), name

    # At this idle-heavy cell the fast path must have skipped something,
    # and every skipped slot is accounted under mac.fastforward.*.
    assert fast_metrics.value("mac.fastforward.spans") > 0
    assert fast_metrics.value("mac.fastforward.slots") > 0
    assert fast_metrics.value("mac.epochs") < slow_metrics.value("mac.epochs")
    assert slow_metrics.value("mac.fastforward.spans", default=0) == 0

"""Tests for the slotted broadcast channel."""

import pytest

from repro.core import ChannelFeedback, Span
from repro.mac import Message, SlottedChannel, StationRegistry


def setup_channel(m=4):
    registry = StationRegistry(8)
    channel = SlottedChannel(registry, transmission_slots=m)
    return registry, channel


class TestChannel:
    def test_invalid_transmission(self):
        with pytest.raises(ValueError):
            SlottedChannel(StationRegistry(2), transmission_slots=0)

    def test_idle_examination(self):
        registry, channel = setup_channel()
        feedback, message = channel.examine(Span(((-4.0, 0.0),)))
        assert feedback is ChannelFeedback.IDLE
        assert message is None
        assert channel.now == 1.0
        assert channel.stats.idle_slots == 1.0

    def test_success_examination(self):
        registry, channel = setup_channel(m=4)
        registry.ingest(Message(arrival=-2.0, station=3, uid=0))
        channel.now = 0.0
        feedback, message = channel.examine(Span(((-4.0, 0.0),)))
        assert feedback is ChannelFeedback.SUCCESS
        assert message.uid == 0
        assert message.tx_start == 0.0
        assert channel.now == 4.0
        assert channel.stats.transmission_slots == 4.0

    def test_collision_examination(self):
        registry, channel = setup_channel()
        registry.ingest(Message(arrival=-3.0, station=1, uid=0))
        registry.ingest(Message(arrival=-2.0, station=2, uid=1))
        feedback, message = channel.examine(Span(((-4.0, 0.0),)))
        assert feedback is ChannelFeedback.COLLISION
        assert message is None
        assert channel.stats.collision_slots == 1.0

    def test_same_station_messages_do_not_collide(self):
        registry, channel = setup_channel()
        registry.ingest(Message(arrival=-3.0, station=1, uid=0))
        registry.ingest(Message(arrival=-2.0, station=1, uid=1))
        feedback, message = channel.examine(Span(((-4.0, 0.0),)))
        assert feedback is ChannelFeedback.SUCCESS
        assert message.uid == 0  # the station's oldest in-window message

    def test_future_window_rejected(self):
        _, channel = setup_channel()
        with pytest.raises(ValueError):
            channel.examine(Span(((0.0, 5.0),)))

    def test_wait_slot(self):
        _, channel = setup_channel()
        channel.wait_slot()
        assert channel.now == 1.0
        assert channel.stats.wait_slots == 1.0

    def test_utilization(self):
        registry, channel = setup_channel(m=3)
        registry.ingest(Message(arrival=-1.0, station=0, uid=0))
        channel.examine(Span(((-2.0, 0.0),)))  # success: 3 slots
        channel.wait_slot()
        assert channel.stats.utilization() == pytest.approx(3.0 / 4.0)

    def test_stats_total(self):
        _, channel = setup_channel()
        channel.wait_slot()
        channel.examine(Span(((-1.0, 0.0),)))
        assert channel.stats.total_slots == pytest.approx(2.0)

    def test_empty_stats_utilization_zero(self):
        _, channel = setup_channel()
        assert channel.stats.utilization() == 0.0


class TestBreakdown:
    def test_shares_sum_to_one(self):
        from repro.mac.channel import ChannelStats

        stats = ChannelStats(
            idle_slots=30.0, collision_slots=10.0,
            transmission_slots=55.0, wait_slots=5.0,
        )
        shares = stats.breakdown()
        assert shares == {
            "idle": 0.30, "collision": 0.10,
            "transmission": 0.55, "wait": 0.05,
        }
        assert sum(shares.values()) == 1.0

    def test_empty_stats_guarded(self):
        from repro.mac.channel import ChannelStats

        shares = ChannelStats().breakdown()
        assert set(shares) == {"idle", "collision", "transmission", "wait"}
        assert all(v == 0.0 for v in shares.values())

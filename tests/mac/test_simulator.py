"""Integration tests for the window-MAC simulator."""

import math

import pytest

from repro.core import ControlPolicy
from repro.mac import MessageFate, WindowMACSimulator
from repro.workloads import PoissonWorkload


def run_sim(policy, lam=0.02, m=25, K=150.0, horizon=40_000.0, seed=9, **kwargs):
    sim = WindowMACSimulator(
        policy, arrival_rate=lam, transmission_slots=m, deadline=K, seed=seed, **kwargs
    )
    return sim.run(horizon, warmup_slots=4_000.0)


class TestValidation:
    def test_invalid_arrival_rate(self):
        with pytest.raises(ValueError):
            WindowMACSimulator(
                ControlPolicy.uncontrolled_fcfs(0.02), 0.0, 25
            )

    def test_invalid_loss_definition(self):
        with pytest.raises(ValueError):
            WindowMACSimulator(
                ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25,
                loss_definition="fuzzy",
            )

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            WindowMACSimulator(
                ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25, deadline=0.0
            )

    def test_invalid_horizon(self):
        sim = WindowMACSimulator(ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25)
        with pytest.raises(ValueError):
            sim.run(0.0)


class TestConservation:
    def test_message_conservation(self):
        result = run_sim(ControlPolicy.optimal(150.0, 0.02))
        accounted = (
            result.delivered_on_time
            + result.delivered_late
            + result.discarded
            + result.unresolved
        )
        assert accounted == result.arrivals

    def test_loss_fraction_in_unit_interval(self):
        result = run_sim(ControlPolicy.uncontrolled_lcfs(0.02))
        assert 0.0 <= result.loss_fraction <= 1.0

    def test_uncontrolled_never_discards(self):
        result = run_sim(ControlPolicy.uncontrolled_fcfs(0.02))
        assert result.discarded == 0

    def test_controlled_discards_under_pressure(self):
        result = run_sim(
            ControlPolicy.optimal(30.0, 0.036), lam=0.036, K=30.0
        )
        assert result.discarded > 0

    def test_reproducible_given_seed(self):
        a = run_sim(ControlPolicy.optimal(100.0, 0.02), K=100.0, seed=5)
        b = run_sim(ControlPolicy.optimal(100.0, 0.02), K=100.0, seed=5)
        assert a.loss_fraction == b.loss_fraction
        assert a.arrivals == b.arrivals


class TestWaitDefinitions:
    def test_paper_wait_below_true_wait(self):
        result = run_sim(ControlPolicy.uncontrolled_fcfs(0.02))
        assert result.mean_paper_wait <= result.mean_true_wait + 1e-9

    def test_controlled_paper_losses_stay_bounded(self):
        """With element 4 active and the 'paper' definition, no delivered
        message can exceed the deadline: the protocol never schedules
        one (Theorem 1 + element 4)."""
        policy = ControlPolicy.optimal(60.0, 0.02)
        sim = WindowMACSimulator(
            policy, 0.02, 25, deadline=60.0, loss_definition="paper", seed=2
        )
        result = sim.run(40_000.0, warmup_slots=4_000.0)
        assert result.delivered_late == 0

    def test_true_definition_allows_some_late(self):
        """Scored by true waiting time, a few deliveries exceed K by the
        message's own scheduling time (§4.2's approximation gap)."""
        policy = ControlPolicy.optimal(30.0, 0.036)
        sim = WindowMACSimulator(
            policy, 0.036, 25, deadline=30.0, loss_definition="true", seed=2
        )
        result = sim.run(60_000.0, warmup_slots=5_000.0)
        assert result.delivered_late >= 0  # usually small but nonzero


class TestUtilization:
    def test_utilization_close_to_offered_load(self):
        lam, m = 0.02, 25  # rho' = 0.5, stable
        result = run_sim(ControlPolicy.uncontrolled_fcfs(lam), lam=lam, m=m)
        assert result.channel.utilization() == pytest.approx(0.5, abs=0.05)

    def test_controlled_utilization_never_wasted_on_late(self):
        """§4.2: the controlled channel transmits only messages accepted
        at the receiver (scored by the paper definition)."""
        policy = ControlPolicy.optimal(40.0, 0.036)
        sim = WindowMACSimulator(
            policy, 0.036, 25, deadline=40.0, loss_definition="paper", seed=3
        )
        result = sim.run(50_000.0, warmup_slots=5_000.0)
        assert result.delivered_late == 0


class TestProtocolOrdering:
    def test_controlled_beats_lcfs_at_moderate_k(self):
        lam, K = 0.03, 75.0
        controlled = run_sim(
            ControlPolicy.optimal(K, lam), lam=lam, K=K, horizon=80_000.0
        )
        lcfs = run_sim(
            ControlPolicy.uncontrolled_lcfs(lam), lam=lam, K=K, horizon=80_000.0
        )
        assert controlled.loss_fraction < lcfs.loss_fraction

    def test_random_discipline_runs(self):
        result = run_sim(ControlPolicy.uncontrolled_random(0.02), horizon=20_000.0)
        assert result.arrivals > 0


class TestWorkloadInjection:
    def test_explicit_workload_used(self):
        workload = PoissonWorkload(rate=0.02)
        sim = WindowMACSimulator(
            ControlPolicy.uncontrolled_fcfs(0.02), 0.02, 25,
            deadline=150.0, seed=4, workload=workload,
        )
        result = sim.run(20_000.0)
        assert result.arrivals > 200

"""Tests for the TDMA extension baseline."""

import pytest

from repro.mac import TDMASimulator, tdma_loss_probability


class TestAnalytic:
    def test_needs_station(self):
        with pytest.raises(ValueError):
            tdma_loss_probability(0.01, 25, 0, 100.0)

    def test_saturated_returns_one(self):
        # per-station rho = (0.05/2)·(2·25) = 1.25 >= 1
        assert tdma_loss_probability(0.05, 25, 2, 500.0) == 1.0

    def test_loss_decreases_with_deadline(self):
        losses = [
            tdma_loss_probability(0.002, 25, 4, K) for K in (50, 200, 800, 3200)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))

    def test_more_stations_worse_latency(self):
        few = tdma_loss_probability(0.002, 25, 2, 300.0)
        many = tdma_loss_probability(0.002, 25, 8, 300.0)
        assert many >= few


class TestSimulator:
    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TDMASimulator(0.0, 25, 4, 100.0)
        with pytest.raises(ValueError):
            TDMASimulator(0.01, 25, 0, 100.0)
        with pytest.raises(ValueError):
            TDMASimulator(0.01, 25, 4, 0.0)

    def test_counts_consistent(self):
        sim = TDMASimulator(0.004, 25, 4, 400.0, seed=1)
        result = sim.run(60_000.0, warmup_slots=5_000.0)
        accounted = (
            result.delivered_on_time + result.delivered_late + result.unresolved
        )
        assert accounted == result.arrivals

    def test_light_load_low_loss(self):
        sim = TDMASimulator(0.002, 25, 4, 800.0, seed=2)
        result = sim.run(80_000.0, warmup_slots=5_000.0)
        assert result.loss_fraction < 0.05

    def test_sim_matches_analytic_roughly(self):
        lam, m, n, K = 0.004, 25, 4, 600.0
        sim = TDMASimulator(lam, m, n, K, seed=3)
        result = sim.run(200_000.0, warmup_slots=10_000.0)
        analytic = tdma_loss_probability(lam, m, n, K)
        assert result.loss_fraction == pytest.approx(analytic, abs=0.05)

    def test_tight_deadline_heavy_loss(self):
        """A deadline below the TDMA cycle dooms most messages."""
        sim = TDMASimulator(0.004, 25, 8, 30.0, seed=4)
        result = sim.run(40_000.0, warmup_slots=4_000.0)
        assert result.loss_fraction > 0.5

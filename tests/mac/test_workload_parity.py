"""Cross-backend parity for the nonstationary workloads.

The acceptance criterion of ISSUE 9's engine: every nonstationary
workload — heavy-tailed (both interarrival families), diurnal,
flash-crowd, adversarial — produces **bit-identical** results on the
reference loop, the fast kernel, the batched lanes and the compiled
backend, across all four protocol disciplines.  Metrics registries must
be equal among the kernel paths (the reference loop legitimately differs
on epoch-granularity series — the idle fast-forward elides empty epochs
— exactly as ``tests/mac/test_obs_parity.py`` documents, so reference
instrumentation is compared through the slot/message counters instead).
"""

import dataclasses

import pytest

from repro.core import ControlPolicy
from repro.experiments.sweep import MACRunSpec, run_spec, run_spec_with_metrics
from repro.mac.batch import batch_eligible, run_batch, run_batch_with_metrics
from repro.workloads import (
    AdversarialWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    HeavyTailedWorkload,
)

M = 25
LAM = 0.5 / M
DEADLINE = 3.0 * M
HORIZON = 2_500.0
WARMUP = 400.0

WORKLOADS = {
    "pareto": HeavyTailedWorkload(rate=LAM, shape=1.5, family="pareto"),
    "weibull": HeavyTailedWorkload(rate=LAM, shape=0.6, family="weibull"),
    "diurnal": DiurnalWorkload(rate=LAM, period=800.0, amplitude=0.9),
    "flash-crowd": FlashCrowdWorkload(
        base_rate=LAM / 1.4,
        peak_ratio=6.0,
        ramp=60.0,
        hold=150.0,
        period=1_500.0,
        onset=300.0,
    ),
    "adversarial": AdversarialWorkload(
        burst_size=6, interval=600.0, background_rate=LAM / 2.0
    ),
}

PROTOCOLS = ("optimal", "uncontrolled_fcfs", "uncontrolled_lcfs", "uncontrolled_random")

# Counters every execution path must agree on exactly (the
# epoch-granularity histograms are kernel-path-only series).
SLOT_AND_MESSAGE_COUNTERS = (
    "mac.slots.idle",
    "mac.slots.collision",
    "mac.slots.transmission",
    "mac.slots.wait",
    "mac.messages.arrivals",
    "mac.messages.on_time",
    "mac.messages.late",
    "mac.messages.discarded",
    "mac.messages.unresolved",
)


def _policy(name: str) -> ControlPolicy:
    if name == "optimal":
        return ControlPolicy.optimal(DEADLINE, LAM)
    return getattr(ControlPolicy, name)(LAM)


def _spec(workload, protocol, backend=None, seed=3) -> MACRunSpec:
    return MACRunSpec(
        policy=_policy(protocol),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=HORIZON,
        warmup=WARMUP,
        n_stations=25,
        deadline=DEADLINE,
        seed=seed,
        workload=workload,
        backend=backend,
    )


def _counters(state: dict) -> dict:
    return {
        name: state.get(name, {}).get("value")
        for name in SLOT_AND_MESSAGE_COUNTERS
    }


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_all_backends_bit_identical(workload_name, protocol):
    workload = WORKLOADS[workload_name]
    reference = run_spec(_spec(workload, protocol, backend="reference"))
    fast = run_spec(_spec(workload, protocol, backend="fast"))
    compiled = run_spec(_spec(workload, protocol, backend="compiled"))
    batch_spec = _spec(workload, protocol)
    assert batch_eligible(batch_spec)
    (batched,) = run_batch([batch_spec])
    for field in dataclasses.fields(reference):
        name = field.name
        assert getattr(fast, name) == getattr(reference, name), f"fast.{name}"
        assert getattr(compiled, name) == getattr(reference, name), (
            f"compiled.{name}"
        )
        assert getattr(batched, name) == getattr(reference, name), (
            f"batch.{name}"
        )


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_kernel_registries_equal(workload_name, protocol):
    workload = WORKLOADS[workload_name]
    fast_result, fast_state = run_spec_with_metrics(
        _spec(workload, protocol, backend="fast")
    )
    compiled_result, compiled_state = run_spec_with_metrics(
        _spec(workload, protocol, backend="compiled")
    )
    ((batch_result, batch_state),) = run_batch_with_metrics(
        [_spec(workload, protocol)]
    )
    reference_result, reference_state = run_spec_with_metrics(
        _spec(workload, protocol, backend="reference")
    )
    assert fast_result == compiled_result == batch_result == reference_result
    assert compiled_state == fast_state
    assert batch_state == fast_state
    # The reference loop walks every epoch individually, so its
    # epoch-granularity series differ by design; the physical slot and
    # message accounting must still agree to the last count.
    assert _counters(reference_state) == _counters(fast_state)


def test_heterogeneous_batch_matches_per_spec_runs():
    # One batch mixing every workload family (distinct arrival shapes,
    # seeds and lane lengths) must equal the spec-at-a-time runs.
    specs = [
        _spec(workload, "optimal", seed=11 + i)
        for i, (_, workload) in enumerate(sorted(WORKLOADS.items()))
    ]
    batched = run_batch(specs)
    individual = [run_spec(spec) for spec in specs]
    assert batched == individual

"""In-process daemon tests: the full submit/dispatch/finalize loop.

Everything here runs against a :class:`ServiceThread` with tiny grids
(hundreds of slots), so the whole file stays in the default suite; the
crash/SIGKILL scenarios live in ``test_chaos.py``.
"""

import asyncio
import json
import threading

import pytest

from repro.experiments.sweep import SweepExecutor
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    InProcessBackend,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    expand_grid,
    summarize_cell,
)
from repro.service import wire

TINY_GRID = {
    "kind": "replicate",
    "seeds": 3,
    "stations": 15,
    "horizon": 1500.0,
    "deadline": 50.0,
}


def tiny_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        state_dir=str(tmp_path / "state"),
        lease_ttl=20.0,
        poll_interval=0.02,
        shard_size=4,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def direct_summaries(grid):
    """What the daemon must reproduce bit-identically (via JSON)."""
    specs = expand_grid(grid)
    results = SweepExecutor().run_specs(specs)
    summaries = [summarize_cell(s, r) for s, r in zip(specs, results)]
    return json.loads(json.dumps(summaries))


class GatedBackend(InProcessBackend):
    """Holds every shard at the door until the test opens the gate
    (heartbeating while it waits, so leases stay alive)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()

    async def run_shard(self, work, heartbeat):
        while not self.gate.is_set():
            heartbeat(0)
            await asyncio.sleep(0.01)
        return await super().run_shard(work, heartbeat)


class TestLifecycle:
    def test_submit_wait_results_bit_identical(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(TINY_GRID)["job_id"]
            done = client.wait(job_id, timeout=60.0, results=True)
        job = done["job"]
        assert job["state"] == "completed"
        assert job["holes"] == 0
        assert done["results"]["summaries"] == direct_summaries(TINY_GRID)

    def test_results_survive_on_disk(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(TINY_GRID)["job_id"]
            client.wait(job_id, timeout=60.0)
        payload = json.loads(config.results_path(job_id).read_text())
        assert payload["schema"] == "repro-service-results-v1"
        assert payload["holes"] == []
        assert len(payload["summaries"]) == 3

    def test_multi_shard_job(self, tmp_path):
        config = tiny_config(tmp_path, shard_size=2)
        grid = dict(TINY_GRID, seeds=5)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            response = client.submit(grid)
            assert response["shards"] == 3
            done = client.wait(response["job_id"], timeout=60.0, results=True)
        assert done["job"]["shards_done"] == 3
        assert done["results"]["summaries"] == direct_summaries(grid)

    def test_drain_exits_cleanly_and_removes_endpoint(self, tmp_path):
        config = tiny_config(tmp_path)
        thread = ServiceThread(config).start()
        client = ServiceClient(config.state_dir)
        assert client.ping()["draining"] is False
        thread.drain()
        assert not config.endpoint_path.exists()

    def test_ping_reports_state(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            response = client.ping()
        assert response["ok"]
        assert "InProcessBackend" in response["backend"]


class TestAdmission:
    def test_full_table_refused_with_429(self, tmp_path):
        config = tiny_config(tmp_path, max_jobs=1)
        backend = GatedBackend(slots=1)
        with ServiceThread(config, backend=backend):
            client = ServiceClient(config.state_dir)
            first = client.submit(TINY_GRID)["job_id"]
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY_GRID)
            assert excinfo.value.code == wire.BUSY
            backend.gate.set()
            done = client.wait(first, timeout=60.0)
            assert done["job"]["state"] == "completed"
            # With the table clear again, admission reopens.
            second = client.submit(TINY_GRID)["job_id"]
            client.wait(second, timeout=60.0)

    def test_draining_server_refuses_with_503(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config) as thread:
            client = ServiceClient(config.state_dir)
            job_id = client.submit(TINY_GRID)["job_id"]
            client.drain()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(TINY_GRID)
            assert excinfo.value.code == wire.DRAINING
            # Drain still finishes the admitted job before exiting.
            thread.drain()
        payload = json.loads(config.results_path(job_id).read_text())
        assert payload["holes"] == []

    def test_bad_grid_refused_with_400(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "mystery"})
            assert excinfo.value.code == wire.BAD_REQUEST
            assert "mystery" in str(excinfo.value)

    def test_unknown_job_is_404(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            with pytest.raises(ServiceError) as excinfo:
                client.status("j9999-deadbeef")
            assert excinfo.value.code == wire.NOT_FOUND


class TestCancel:
    def test_cancel_pending_job(self, tmp_path):
        config = tiny_config(tmp_path, max_jobs=4)
        backend = GatedBackend(slots=1)
        with ServiceThread(config, backend=backend):
            client = ServiceClient(config.state_dir)
            running = client.submit(TINY_GRID)["job_id"]
            queued = client.submit(TINY_GRID)["job_id"]
            response = client.cancel(queued)
            assert response["state"] == "cancelled"
            backend.gate.set()
            client.wait(running, timeout=60.0)
            states = {
                j["job_id"]: j["state"] for j in client.jobs()["jobs"]
            }
            assert states[queued] == "cancelled"
            assert states[running] == "completed"

    def test_cancel_terminal_job_is_idempotent(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(TINY_GRID)["job_id"]
            client.wait(job_id, timeout=60.0)
            response = client.cancel(job_id)
            assert response["already"] is True
            assert response["state"] == "completed"


class TestMetricsOp:
    def test_counters_visible_over_the_wire(self, tmp_path):
        config = tiny_config(tmp_path)
        registry = MetricsRegistry()
        with ServiceThread(config, metrics=registry):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(TINY_GRID)["job_id"]
            client.wait(job_id, timeout=60.0)
            metrics = client.metrics()["metrics"]
        assert metrics["service.jobs.submitted"]["value"] == 1
        assert metrics["service.jobs.completed"]["value"] == 1
        assert metrics["service.leases.granted"]["value"] >= 1
        assert metrics["service.shards.completed"]["value"] >= 1

    def test_disabled_registry_reports_none(self, tmp_path):
        config = tiny_config(tmp_path)
        with ServiceThread(config):
            client = ServiceClient(config.state_dir)
            assert client.metrics()["metrics"] is None


class TestClientErrors:
    def test_no_endpoint_is_unreachable(self, tmp_path):
        client = ServiceClient(tmp_path / "nowhere")
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.code == wire.UNREACHABLE

    def test_stale_endpoint_is_unreachable(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "endpoint.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 1, "pid": 0})
        )
        client = ServiceClient(state, timeout=2.0)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.code == wire.UNREACHABLE

"""Lease-table tests: TTL expiry and token fencing, under a fake clock."""

import pytest

from repro.service.leases import LeaseTable


class TestGrant:
    def test_grant_and_get(self):
        table = LeaseTable()
        lease = table.grant("j1", 0, token=1, ttl=10.0, now=100.0)
        assert table.get("j1", 0) is lease
        assert lease.expires_at == 110.0
        assert len(table) == 1

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            LeaseTable().grant("j1", 0, token=1, ttl=0.0, now=0.0)

    def test_regrant_fences_previous_attempt(self):
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=10.0, now=0.0)
        table.grant("j1", 0, token=2, ttl=10.0, now=5.0)
        # The old attempt can no longer renew or release.
        assert not table.renew("j1", 0, token=1, now=6.0)
        assert not table.release("j1", 0, token=1)
        # The new one can.
        assert table.renew("j1", 0, token=2, now=6.0)
        assert table.release("j1", 0, token=2)


class TestRenewal:
    def test_renew_pushes_expiry(self):
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=10.0, now=0.0)
        assert table.renew("j1", 0, token=1, now=8.0)
        lease = table.get("j1", 0)
        assert lease.expires_at == 18.0
        assert lease.renewals == 1

    def test_renew_unknown_shard_is_refused(self):
        assert not LeaseTable().renew("j1", 0, token=1, now=0.0)

    def test_heartbeats_keep_a_slow_shard_alive(self):
        # Progress, not runtime, is what the TTL bounds: renew inside
        # every window and the lease never expires.
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=10.0, now=0.0)
        for tick in range(1, 20):
            now = tick * 8.0
            assert table.renew("j1", 0, token=1, now=now)
            assert table.expire(now) == []
        assert len(table) == 1


class TestExpiry:
    def test_silent_lease_expires(self):
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=10.0, now=0.0)
        assert table.expire(9.9) == []
        expired = table.expire(10.0)
        assert [lease.key for lease in expired] == [("j1", 0)]
        assert len(table) == 0

    def test_expire_pops_only_the_overdue(self):
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=5.0, now=0.0)
        table.grant("j1", 1, token=1, ttl=50.0, now=0.0)
        expired = table.expire(10.0)
        assert [lease.shard_id for lease in expired] == [0]
        assert table.get("j1", 1) is not None

    def test_expired_attempt_cannot_release(self):
        # The zombie scenario: lease expired, shard re-granted, the old
        # attempt finally finishes — its completion must be discarded.
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=5.0, now=0.0)
        table.expire(5.0)
        table.grant("j1", 0, token=2, ttl=5.0, now=6.0)
        assert not table.release("j1", 0, token=1)
        assert table.release("j1", 0, token=2)


class TestRelease:
    def test_release_job_drops_all_claims(self):
        table = LeaseTable()
        table.grant("j1", 0, token=1, ttl=5.0, now=0.0)
        table.grant("j1", 1, token=1, ttl=5.0, now=0.0)
        table.grant("j2", 0, token=1, ttl=5.0, now=0.0)
        assert table.release_job("j1") == 2
        assert len(table) == 1
        assert table.get("j2", 0) is not None

"""Wire-protocol tests: framing, schema guard, refusal mapping."""

import json

import pytest

from repro.service.wire import (
    BAD_REQUEST,
    BUSY,
    MAX_LINE_BYTES,
    OPS,
    WIRE_SCHEMA,
    ServiceError,
    decode,
    encode,
    ok,
    parse_request,
    raise_for,
    refusal,
)


class TestFraming:
    def test_round_trip(self):
        line = encode({"op": "ping"})
        assert line.endswith(b"\n")
        message = decode(line)
        assert message["op"] == "ping"
        assert message["schema"] == WIRE_SCHEMA

    def test_single_line(self):
        line = encode({"op": "submit", "grid": {"kind": "figure7"}})
        assert line.count(b"\n") == 1

    def test_malformed_json_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            decode(b"{not json\n")
        assert excinfo.value.code == BAD_REQUEST

    def test_non_object_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            decode(b"[1, 2, 3]\n")
        assert excinfo.value.code == BAD_REQUEST

    def test_oversized_line_is_400(self):
        line = b"x" * (MAX_LINE_BYTES + 1)
        with pytest.raises(ServiceError) as excinfo:
            decode(line)
        assert excinfo.value.code == BAD_REQUEST

    def test_schema_mismatch_refused(self):
        line = json.dumps({"schema": "repro-service-v999", "op": "ping"})
        with pytest.raises(ServiceError) as excinfo:
            decode(line.encode() + b"\n")
        assert excinfo.value.code == BAD_REQUEST
        assert "schema" in str(excinfo.value)


class TestRequests:
    def test_known_ops_parse(self):
        for op in OPS:
            parsed_op, message = parse_request({"op": op})
            assert parsed_op == op
            assert message["op"] == op

    def test_unknown_op_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_request({"op": "explode"})
        assert excinfo.value.code == BAD_REQUEST

    def test_missing_op_is_400(self):
        with pytest.raises(ServiceError):
            parse_request({})


class TestResponses:
    def test_ok_shape(self):
        response = ok(job_id="j1")
        assert response["ok"] is True
        assert response["job_id"] == "j1"
        assert raise_for(response) is response

    def test_refusal_raises_with_code(self):
        response = refusal(BUSY, "job table full")
        assert response["ok"] is False
        with pytest.raises(ServiceError) as excinfo:
            raise_for(response)
        assert excinfo.value.code == BUSY
        assert "job table full" in str(excinfo.value)

    def test_error_str_includes_code(self):
        assert str(ServiceError(429, "busy")) == "[429] busy"

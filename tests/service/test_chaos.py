"""Chaos tests for the sweep daemon: the failure matrix, end to end.

The contract under test (docs/service.md): a grid submitted to the
daemon completes **bit-identically** to a direct
:class:`SweepExecutor` run of the same grid, despite

* a shard attempt going silent (lease expiry -> re-dispatch),
* a SIGKILL'd worker process mid-shard (pool supervision),
* a SIGKILL'd *server* mid-grid (job-table recovery + journal replay),
* SIGTERM under load (graceful drain, exit 0),

with zero quarantine holes and the robustness counters visible in the
metrics report.

Set ``REPRO_SERVICE_STATE_DIR`` to keep the acceptance test's state
directory (journals, job table, metrics report) for CI artifact upload.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.sweep import SweepExecutor
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    InProcessBackend,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    expand_grid,
    summarize_cell,
)

pytestmark = pytest.mark.chaos

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

GRID = {
    "kind": "replicate",
    "seeds": 6,
    "stations": 20,
    "horizon": 3000.0,
    "deadline": 50.0,
}


def direct_summaries(grid):
    specs = expand_grid(grid)
    results = SweepExecutor().run_specs(specs)
    return json.loads(
        json.dumps([summarize_cell(s, r) for s, r in zip(specs, results)])
    )


def state_dir(tmp_path, name: str) -> str:
    """Honour REPRO_SERVICE_STATE_DIR so CI can upload the evidence."""
    root = os.environ.get("REPRO_SERVICE_STATE_DIR")
    base = Path(root) / name if root else tmp_path / name
    base.mkdir(parents=True, exist_ok=True)
    return str(base)


class HeartbeatLost(InProcessBackend):
    """First attempt of every shard executes but never heartbeats and
    never reports — a hung network, a partitioned host.  The lease must
    expire and the re-dispatched attempt must resume from the journal."""

    async def run_shard(self, work, heartbeat):
        if work.token == 1:
            await super().run_shard(work, lambda cells: None)
            await asyncio.sleep(120.0)  # abandoned; fenced out long before
        return await super().run_shard(work, heartbeat)


class NeverStarts(InProcessBackend):
    """Every attempt stalls (heartbeating) until the crash; used to hold
    a job mid-flight while the test kills the server."""

    async def run_shard(self, work, heartbeat):
        while True:
            heartbeat(0)
            await asyncio.sleep(0.01)


class TestLeaseExpiry:
    def test_silent_shard_is_redispatched_bit_identically(self, tmp_path):
        config = ServiceConfig(
            state_dir=state_dir(tmp_path, "lease-expiry"),
            lease_ttl=0.4,
            poll_interval=0.02,
            shard_size=3,
        )
        registry = MetricsRegistry()
        backend = HeartbeatLost(slots=2)
        with ServiceThread(config, backend=backend, metrics=registry):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(GRID)["job_id"]
            done = client.wait(job_id, timeout=120.0, results=True)
        job = done["job"]
        assert job["state"] == "completed"
        assert job["holes"] == 0
        assert job["redispatches"] >= 1
        assert registry.value("service.leases.expired") >= 1
        assert registry.value("service.shards.redispatched") >= 1
        # The second attempt resumed from the first attempt's journal —
        # and the merged grid is bit-identical to a direct run.
        assert done["results"]["summaries"] == direct_summaries(GRID)

    def test_stale_attempt_result_is_fenced_out(self, tmp_path):
        # The zombie's completion (attempt 1, after expiry) must be
        # counted as stale, not double-complete the shard.
        config = ServiceConfig(
            state_dir=state_dir(tmp_path, "fencing"),
            lease_ttl=0.3,
            poll_interval=0.02,
        )
        registry = MetricsRegistry()

        class SlowFirstAttempt(InProcessBackend):
            async def run_shard(self, work, heartbeat):
                if work.token == 1:
                    # Runs fine but reports only after its lease died.
                    result = await super().run_shard(work, lambda c: None)
                    await asyncio.sleep(1.0)
                    return result
                return await super().run_shard(work, heartbeat)

        with ServiceThread(
            config, backend=SlowFirstAttempt(slots=2), metrics=registry
        ):
            client = ServiceClient(config.state_dir)
            job_id = client.submit(GRID)["job_id"]
            done = client.wait(job_id, timeout=120.0)
            # Give the zombie time to report and be discarded.
            time.sleep(1.5)
        assert done["job"]["state"] == "completed"
        assert registry.value("service.shards.stale_results") >= 1


class TestServerCrash:
    def test_kill_and_restart_recovers_midflight_job(self, tmp_path):
        sdir = state_dir(tmp_path, "server-crash")
        config = ServiceConfig(
            state_dir=sdir, lease_ttl=5.0, poll_interval=0.02, shard_size=3
        )
        crashed = ServiceThread(config, backend=NeverStarts(slots=2)).start()
        client = ServiceClient(sdir)
        job_id = client.submit(GRID)["job_id"]
        deadline = time.monotonic() + 30.0
        while client.status(job_id)["job"]["state"] != "running":
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.05)
        crashed.kill()  # no drain, no cleanup — SIGKILL semantics

        registry = MetricsRegistry()
        with ServiceThread(config, metrics=registry):
            done = client.wait(job_id, timeout=120.0, results=True)
        job = done["job"]
        assert job["state"] == "completed"
        assert job["holes"] == 0
        assert registry.value("service.shards.recovered") >= 1
        assert registry.value("service.jobs.recovered") >= 1
        # Leased-at-crash shards were re-granted: that is a re-dispatch.
        assert registry.value("service.shards.redispatched") >= 1
        assert done["results"]["summaries"] == direct_summaries(GRID)


def _serve_args(sdir, *extra):
    return [
        sys.executable, "-m", "repro", "serve", "--state", sdir,
        "--lease-ttl", "5", "--slots", "1", "--shard-size", "3",
        "--metrics", str(Path(sdir) / "report.json"), *extra,
    ]


def _spawn_serve(sdir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        _serve_args(sdir, *extra), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_server(client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            return client.ping()
        except Exception:
            time.sleep(0.1)
    raise AssertionError("server never came up")


def _child_pids(pid):
    """Linux /proc scan: direct children (the shard pool's workers)."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue
        fields = stat.rsplit(")", 1)[1].split()
        if int(fields[1]) == pid:
            children.append(int(entry))
    return children


def _kill_quietly(pid):
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


class TestDaemonProcess:
    """Subprocess-level chaos: real signals against the real CLI."""

    def test_sigterm_drains_under_load_and_exits_zero(self, tmp_path):
        sdir = state_dir(tmp_path, "drain-under-load")
        proc = _spawn_serve(sdir)
        try:
            client = ServiceClient(sdir)
            _wait_for_server(client)
            job_id = client.submit(GRID)["job_id"]
            # SIGTERM while the grid is in flight: the daemon must stop
            # admitting, finish the admitted job, and exit 0.
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        results = json.loads(
            (Path(sdir) / "results" / f"{job_id}.json").read_text()
        )
        assert results["holes"] == []
        assert results["summaries"] == direct_summaries(GRID)
        # The drain duration landed in the metrics report.
        report = json.loads((Path(sdir) / "report.json").read_text())
        assert "service.drain.wall_s" in report["metrics"]

    def test_acceptance_worker_kill_then_server_kill(self, tmp_path):
        """ISSUE acceptance: one worker SIGKILLed mid-shard AND one full
        server restart mid-grid; the grid still completes with zero
        holes, bit-identical to a direct run, with the lease-expiry and
        re-dispatch counters visible in the --metrics report."""
        sdir = state_dir(tmp_path, "acceptance")
        # Heavy enough that the grid is reliably mid-flight when the
        # server dies (~1s of compute per shard, three shards).
        grid = {
            "kind": "replicate",
            "seeds": 8,
            "stations": 200,
            "horizon": 1_000_000.0,
            "deadline": 50.0,
        }
        orphans = []
        proc = _spawn_serve(sdir, "--workers", "2")
        try:
            client = ServiceClient(sdir)
            _wait_for_server(client)
            job_id = client.submit(grid)["job_id"]

            # (a) SIGKILL a pool worker mid-shard.  Workers are direct
            # children of the serve process; wait for them to spawn.
            deadline = time.monotonic() + 60.0
            while not (workers := _child_pids(proc.pid)):
                assert time.monotonic() < deadline, "pool never spawned"
                time.sleep(0.05)
            orphans = list(workers)
            _kill_quietly(workers[0])

            # (b) SIGKILL the whole server mid-grid: wait for some
            # progress (so the journal has cells to replay), confirm the
            # job is still running (so a shard is leased), then kill.
            deadline = time.monotonic() + 120.0
            while True:
                job = client.status(job_id)["job"]
                if job["shards_done"] >= 1:
                    break
                assert time.monotonic() < deadline, "no shard progress"
                time.sleep(0.05)
            assert job["state"] == "running", "grid finished too fast"
            time.sleep(0.15)  # let the next shard's lease be granted
            orphans.extend(_child_pids(proc.pid))
            proc.kill()
            proc.wait(timeout=30.0)

            # Restart on the same state dir: the job table recovers,
            # leased shards re-dispatch, journals replay.
            proc = _spawn_serve(sdir, "--workers", "2")
            done = client.wait(job_id, timeout=300.0, results=True)
            job = done["job"]
            assert job["state"] == "completed"
            assert job["holes"] == 0
            assert done["results"]["summaries"] == direct_summaries(grid)

            # Graceful drain; the report is written on exit.
            client.drain()
            assert proc.wait(timeout=120.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            for pid in orphans:  # orphaned pool workers, if any
                _kill_quietly(pid)
        report = json.loads((Path(sdir) / "report.json").read_text())
        metrics = report["metrics"]
        # The robustness counters are registered up front, so the report
        # always shows them; recovery makes redispatched positive.
        assert "service.leases.expired" in metrics
        assert metrics["service.shards.redispatched"]["value"] >= 1
        assert metrics["service.shards.recovered"]["value"] >= 1
        assert metrics["service.jobs.completed"]["value"] >= 1

"""Tests for the sweep service (repro.service)."""

"""Job-table tests: persistence, recovery, FIFO scheduling."""

import json

import pytest

from repro.service.jobs import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_RUNNING,
    SHARD_DONE,
    SHARD_LEASED,
    SHARD_PENDING,
    JobTable,
    JobTableSchemaError,
)

GRID = {"kind": "replicate", "seeds": 4}
PLAN = [[0, 1], [2, 3]]


class TestSubmit:
    def test_job_ids_are_sequenced_and_content_addressed(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        first = table.submit(dict(GRID), PLAN, cells=4)
        second = table.submit(dict(GRID), PLAN, cells=4)
        assert first.job_id.startswith("j0001-")
        assert second.job_id.startswith("j0002-")
        # Same grid -> same content suffix, different sequence.
        assert first.job_id.split("-")[1] == second.job_id.split("-")[1]

    def test_shards_mirror_the_plan(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        job = table.submit(dict(GRID), PLAN, cells=4)
        assert [s.spec_indices for s in job.shards] == PLAN
        assert all(s.state == SHARD_PENDING for s in job.shards)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "jobs.json"
        table = JobTable(path)
        job = table.submit(dict(GRID), PLAN, cells=4)
        job.state = JOB_RUNNING
        job.shards[0].state = SHARD_DONE
        job.shards[0].attempts = 2
        job.shards[0].redispatches = 1
        job.holes.append({"index": 3, "reason": "poison", "attempts": 3})
        table.save()

        loaded = JobTable.load(path)
        copy = loaded.get(job.job_id)
        assert copy.state == JOB_RUNNING
        assert copy.shards[0].state == SHARD_DONE
        assert copy.shards[0].redispatches == 1
        assert copy.holes == job.holes
        # The sequence continues, never collides.
        again = loaded.submit(dict(GRID), PLAN, cells=4)
        assert again.job_id.startswith("j0002-")

    def test_missing_file_loads_empty(self, tmp_path):
        table = JobTable.load(tmp_path / "absent.json")
        assert table.jobs == {}

    def test_foreign_schema_refused(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"schema": "someone-else-v9", "jobs": []}))
        with pytest.raises(JobTableSchemaError, match="someone-else-v9"):
            JobTable.load(path)

    def test_corrupt_file_refused(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{truncated")
        with pytest.raises(JobTableSchemaError, match="unreadable"):
            JobTable.load(path)

    def test_save_is_atomic_no_stray_temp(self, tmp_path):
        path = tmp_path / "jobs.json"
        table = JobTable(path)
        table.submit(dict(GRID), PLAN, cells=4)
        table.save()
        table.save()
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestRecovery:
    def test_leased_shards_return_to_pending(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        job = table.submit(dict(GRID), PLAN, cells=4)
        job.state = JOB_RUNNING
        job.shards[0].state = SHARD_LEASED
        job.shards[0].attempts = 1
        job.shards[1].state = SHARD_DONE
        jobs_touched, shards_reset = table.recover()
        assert (jobs_touched, shards_reset) == (1, 1)
        assert job.shards[0].state == SHARD_PENDING
        assert job.shards[0].attempts == 1  # attempts survive: next grant fences
        assert job.shards[1].state == SHARD_DONE  # done is never lost

    def test_terminal_jobs_left_alone(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        job = table.submit(dict(GRID), PLAN, cells=4)
        job.state = JOB_COMPLETED
        job.shards[0].state = SHARD_LEASED
        assert table.recover() == (0, 0)
        assert job.shards[0].state == SHARD_LEASED


class TestScheduling:
    def test_fifo_across_jobs(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        first = table.submit(dict(GRID), PLAN, cells=4)
        second = table.submit(dict(GRID), PLAN, cells=4)
        job, shard = table.next_pending()
        assert job is first and shard.shard_id == 0
        shard.state = SHARD_LEASED
        job, shard = table.next_pending()
        assert job is first and shard.shard_id == 1
        shard.state = SHARD_DONE
        job, shard = table.next_pending()
        assert job is second

    def test_cancelled_jobs_are_skipped(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        first = table.submit(dict(GRID), PLAN, cells=4)
        second = table.submit(dict(GRID), PLAN, cells=4)
        first.state = JOB_CANCELLED
        job, _ = table.next_pending()
        assert job is second

    def test_pending_counts(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        job = table.submit(dict(GRID), PLAN, cells=4)
        assert table.pending_shards() == 2
        job.shards[0].state = SHARD_DONE
        assert table.pending_shards() == 1

    def test_snapshot_shape(self, tmp_path):
        table = JobTable(tmp_path / "jobs.json")
        job = table.submit(dict(GRID), PLAN, cells=4)
        job.shards[0].state = SHARD_DONE
        job.shards[1].redispatches = 2
        snap = job.snapshot()
        assert snap["cells_done"] == 2
        assert snap["shards_done"] == 1
        assert snap["redispatches"] == 2
        assert snap["kind"] == "replicate"

"""Grid-expansion tests: the service runs exactly the drivers' grids."""

import pytest

from repro.experiments.figure7 import PanelConfig, default_deadlines
from repro.experiments.sweep import spec_fingerprint
from repro.service.grids import GRID_KINDS, expand_grid, summarize_cell
from repro.experiments.sweep import SweepExecutor


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown grid kind"):
            expand_grid({"kind": "mystery"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown grid kind"):
            expand_grid({})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            expand_grid(["figure7"])

    def test_unknown_parameter_named_in_error(self):
        with pytest.raises(ValueError, match="typo_param"):
            expand_grid({"kind": "replicate", "typo_param": 3})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="psychic"):
            expand_grid({"kind": "replicate", "protocol": "psychic"})

    def test_negative_error_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            expand_grid({"kind": "feedback", "errors": [-0.1]})

    def test_empty_deadlines_rejected(self):
        with pytest.raises(ValueError, match="at least one deadline"):
            expand_grid({"kind": "figure7", "deadlines": []})


class TestExpansion:
    def test_every_kind_expands(self):
        for kind in GRID_KINDS:
            specs = expand_grid({"kind": kind})
            assert specs, kind

    def test_expansion_is_deterministic(self):
        # A restarted server re-expands a recovered job; the grids (and
        # therefore the journal keys) must match exactly.
        grid = {"kind": "figure7", "deadlines": [50.0, 100.0], "seed": 7}
        first = [spec_fingerprint(s) for s in expand_grid(grid)]
        second = [spec_fingerprint(s) for s in expand_grid(dict(grid))]
        assert first == second

    def test_figure7_matches_panel_layout(self):
        config = PanelConfig(rho_prime=0.5, message_length=25)
        specs = expand_grid({"kind": "figure7"})
        deadlines = default_deadlines(config)
        # Three arms (controlled, FCFS, LCFS) x the default deadline grid.
        assert len(specs) == 3 * len(deadlines)
        assert specs[0].policy.name == "controlled"
        assert {s.deadline for s in specs} == set(deadlines)

    def test_replicate_derives_distinct_seeds(self):
        specs = expand_grid({"kind": "replicate", "seeds": 5})
        assert len(specs) == 5
        assert len({s.seed for s in specs}) == 5

    def test_feedback_covers_error_grid(self):
        specs = expand_grid(
            {"kind": "feedback", "errors": [0.0, 0.05], "seeds": 2}
        )
        assert len(specs) == 4
        noisy = [
            s
            for s in specs
            if s.fault_model is not None
            and s.fault_model.p_idle_as_collision > 0
        ]
        assert len(noisy) == 2  # the 0.05-error arm's two replications

    def test_element4_pairs_discard_arms(self):
        specs = expand_grid({"kind": "element4"})
        assert [s.policy.discard_deadline is not None for s in specs] == [
            True,
            False,
        ]


class TestSummaries:
    def test_summary_is_json_round_trippable(self):
        import json

        spec = expand_grid(
            {"kind": "replicate", "seeds": 1, "stations": 10,
             "horizon": 500.0, "deadline": 40.0}
        )[0]
        result = SweepExecutor().run_specs([spec])[0]
        summary = summarize_cell(spec, result)
        assert json.loads(json.dumps(summary)) == summary
        assert summary["arm"] == spec.policy.name
        assert summary["seed"] == spec.seed
        assert 0.0 <= summary["loss_fraction"] <= 1.0

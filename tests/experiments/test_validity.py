"""Unit tests for the model-validity sweep driver."""

import math

import pytest

from repro.experiments import (
    DEFAULT_AGREEMENT_TOL,
    SCENARIO_FAMILIES,
    ValidityConfig,
    run_validity,
    scenario_workload,
)
from repro.obs.metrics import MetricsRegistry

SMALL = ValidityConfig(
    rho_primes=(0.5,),
    message_lengths=(25,),
    deadline_factors=(3.0,),
    families=("stationary", "adversarial"),
    horizon=6_000.0,
    warmup=750.0,
)


class TestScenarioWorkloads:
    @pytest.mark.parametrize("family", SCENARIO_FAMILIES)
    @pytest.mark.parametrize("rate", (0.01, 0.02, 0.0075))
    def test_every_family_is_rate_matched(self, family, rate):
        workload = scenario_workload(family, rate)
        if family == "stationary":
            assert workload is None  # the simulator's built-in Poisson
        else:
            assert workload.mean_rate == pytest.approx(rate, rel=1e-12)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            scenario_workload("fractal", 0.02)


class TestConfigValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            ValidityConfig(families=("stationary", "fractal"))

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            ValidityConfig(rho_primes=())

    def test_bad_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            ValidityConfig(agreement_tol=0.0)

    def test_bad_deadline_factor(self):
        with pytest.raises(ValueError, match="deadline factors"):
            ValidityConfig(deadline_factors=(0.0, 3.0))


class TestRunValidity:
    def test_small_sweep_shape_and_control_arm(self):
        report = run_validity(SMALL)
        assert len(report.cells) == 2
        assert [cell.family for cell in report.cells] == [
            "stationary",
            "adversarial",
        ]
        for cell in report.cells:
            assert cell.deadline == 75.0
            assert 0.0 <= cell.analytic <= 1.0
            assert 0.0 <= cell.simulated <= 1.0
            assert math.isfinite(cell.stderr)
            assert cell.delta == cell.simulated - cell.analytic
        # Both cells compare against the same Poisson counterfactual.
        assert report.cells[0].analytic == report.cells[1].analytic
        # The adversarial arm diverges far beyond the control arm even
        # on this short horizon.
        assert abs(report.cells[1].delta) > abs(report.cells[0].delta)

    def test_batched_and_unbatched_sweeps_agree(self):
        batched = run_validity(SMALL, batch=True)
        unbatched = run_validity(SMALL, batch=False)
        for left, right in zip(batched.cells, unbatched.cells):
            assert left == right

    def test_family_summaries_and_tables(self):
        report = run_validity(SMALL)
        summaries = {s.family: s for s in report.family_summaries()}
        assert set(summaries) == {"stationary", "adversarial"}
        assert summaries["adversarial"].cells == 1
        assert summaries["adversarial"].max_abs_delta == abs(
            report.cell("adversarial", 0.5, 25, 75.0).delta
        )
        table = report.to_table()
        assert "Family verdicts" in table
        assert "adversarial" in table
        csv = report.to_csv()
        assert csv.splitlines()[0].startswith("family,rho_prime")
        assert len(csv.splitlines()) == 3

    def test_flush_metrics_writes_the_divergence_map(self):
        registry = MetricsRegistry()
        run_validity(SMALL, metrics=registry)
        state = registry.to_dict()
        key = "validity.adversarial.rho0.5.m25.k75"
        assert f"{key}.delta" in state
        assert state[f"{key}.delta"]["value"] == pytest.approx(
            state[f"{key}.simulated"]["value"] - state[f"{key}.analytic"]["value"]
        )
        assert state["validity.cells"]["value"] == 2
        assert "validity.adversarial.max_abs_delta" in state

    def test_cell_lookup_raises_on_missing(self):
        report = run_validity(SMALL)
        with pytest.raises(KeyError):
            report.cell("diurnal", 0.5, 25, 75.0)


@pytest.mark.slow
def test_full_grid_acceptance():
    # The ISSUE 9 acceptance criterion on the real Figure-7 grid: the
    # stationary control agrees with eq. 4.7 everywhere, and every
    # nonstationary family demonstrably exceeds the tolerance somewhere.
    report = run_validity(ValidityConfig(), workers=4)
    summaries = {s.family: s for s in report.family_summaries()}
    assert summaries["stationary"].holds
    for family in ("heavy-tailed", "diurnal", "flash-crowd", "adversarial"):
        assert not summaries[family].holds, family
        assert summaries[family].max_abs_delta > 2 * DEFAULT_AGREEMENT_TOL

"""Determinism of the parallel sweep engine.

The executor's contract: merged sweep results are identical for any
worker count, and identical to the historical sequential loops.  Grids
here are kept tiny (short horizons) because the property under test is
exact equality, not statistics.
"""

import pytest

from repro.core import ControlPolicy
from repro.experiments import (
    MACRunSpec,
    ResilienceOptions,
    RobustnessConfig,
    SweepExecutor,
    derive_seeds,
    feedback_error_sweep,
    generate_panel,
    PanelConfig,
    replicate,
    spec_fingerprint,
)
from repro.experiments.sweep import run_spec

M = 25
LAM = 0.5 / M


def _base_spec_kwargs():
    return dict(
        policy=ControlPolicy.optimal(3.0 * M, LAM),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=4_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=1,
    )


class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"arrival_rate": 0.0},
            {"arrival_rate": -0.01},
            {"transmission_slots": 0},
            {"horizon": 0.0},
            {"horizon": -1.0},
            {"warmup": -1.0},
            {"warmup": 4_000.0},  # warmup == horizon leaves nothing measured
            {"n_stations": 0},
            {"deadline": 0.0},
        ],
    )
    def test_bad_grid_parameters_fail_at_construction(self, overrides):
        # The whole point: a bad cell dies here with a field name, not
        # three retries deep in a worker process.
        kwargs = _base_spec_kwargs()
        kwargs.update(overrides)
        with pytest.raises(ValueError):
            MACRunSpec(**kwargs)

    def test_valid_boundaries_accepted(self):
        kwargs = _base_spec_kwargs()
        kwargs.update(warmup=0.0, transmission_slots=1, n_stations=1)
        MACRunSpec(**kwargs)  # must not raise


def _specs():
    return [
        MACRunSpec(
            policy=ControlPolicy.optimal(3.0 * M, LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            horizon=4_000.0,
            warmup=500.0,
            n_stations=25,
            deadline=3.0 * M,
            seed=seed,
        )
        for seed in derive_seeds(base_seed=77, n=6)
    ]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_does_not_change_results(workers):
    baseline = SweepExecutor(None).run_specs(_specs())
    fanned = SweepExecutor(workers).run_specs(_specs())
    assert fanned == baseline


def test_derive_seeds_deterministic_and_distinct():
    first = derive_seeds(123, 8)
    second = derive_seeds(123, 8)
    assert first == second
    assert len(set(first)) == 8
    # A prefix of a longer spawn is the same seeds: resumable grids.
    assert derive_seeds(123, 4) == first[:4]


@pytest.mark.parametrize("workers", [1, 2])
def test_figure7_panel_independent_of_workers(workers):
    config = PanelConfig(rho_prime=0.5, message_length=M)
    kwargs = dict(
        deadlines=[2.0 * M, 4.0 * M],
        include_simulation=True,
        sim_horizon=3_000.0,
        sim_warmup=400.0,
    )
    sequential = generate_panel(config, workers=None, **kwargs)
    fanned = generate_panel(config, workers=workers, **kwargs)
    for name, series in sequential.series.items():
        assert fanned.series[name].points == series.points


@pytest.mark.parametrize("workers", [1, 2])
def test_robustness_sweep_independent_of_workers(workers):
    config = RobustnessConfig(horizon=3_000.0, n_seeds=2)
    sequential = feedback_error_sweep(config, error_rates=(0.0, 0.01))
    fanned = feedback_error_sweep(
        config, error_rates=(0.0, 0.01), workers=workers
    )
    assert fanned.points == sequential.points


def test_replicate_parallel_matches_inline():
    inline = replicate(_loss_at_seed, n_replications=3, base_seed=5)
    fanned = replicate(
        _loss_at_seed, n_replications=3, base_seed=5, executor=2
    )
    assert fanned.values == inline.values


class TestResilientSweep:
    def test_checkpointed_sweep_resumes_bit_identical(self, tmp_path):
        baseline = SweepExecutor(None).run_specs(_specs())
        opts = ResilienceOptions(checkpoint=str(tmp_path / "j"))
        first = SweepExecutor(None, opts).run_specs(_specs())
        assert first == baseline
        resumer = SweepExecutor(
            None, ResilienceOptions(checkpoint=str(tmp_path / "j"), resume=True)
        )
        resumed = resumer.run_specs(_specs())
        assert resumed == baseline
        assert resumer.last_outcome.replayed == len(baseline)
        assert resumer.last_outcome.executed == 0

    def test_fingerprints_are_grid_position_free(self):
        # Reordering the grid must not change any cell's journal key.
        specs = _specs()
        assert [spec_fingerprint(s) for s in reversed(specs)] == list(
            reversed([spec_fingerprint(s) for s in specs])
        )

    def test_map_journals_plain_functions(self, tmp_path):
        opts = ResilienceOptions(checkpoint=str(tmp_path / "j"))
        executor = SweepExecutor(None, opts)
        assert executor.map(_loss_at_seed, [3, 4]) == [
            _loss_at_seed(3),
            _loss_at_seed(4),
        ]
        resumer = SweepExecutor(None, ResilienceOptions(
            checkpoint=str(tmp_path / "j"), resume=True))
        resumer.map(_loss_at_seed, [3, 4])
        assert resumer.last_outcome.replayed == 2


def _loss_at_seed(seed: int) -> float:
    spec = MACRunSpec(
        policy=ControlPolicy.optimal(3.0 * M, LAM),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=3_000.0,
        warmup=400.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=seed,
    )
    return run_spec(spec).loss_fraction

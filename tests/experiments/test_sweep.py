"""Determinism of the parallel sweep engine.

The executor's contract: merged sweep results are identical for any
worker count, and identical to the historical sequential loops.  Grids
here are kept tiny (short horizons) because the property under test is
exact equality, not statistics.
"""

import pytest

from repro.core import ControlPolicy
from repro.experiments import (
    MACRunSpec,
    RobustnessConfig,
    SweepExecutor,
    derive_seeds,
    feedback_error_sweep,
    generate_panel,
    PanelConfig,
    replicate,
)
from repro.experiments.sweep import run_spec

M = 25
LAM = 0.5 / M


def _specs():
    return [
        MACRunSpec(
            policy=ControlPolicy.optimal(3.0 * M, LAM),
            arrival_rate=LAM,
            transmission_slots=M,
            horizon=4_000.0,
            warmup=500.0,
            n_stations=25,
            deadline=3.0 * M,
            seed=seed,
        )
        for seed in derive_seeds(base_seed=77, n=6)
    ]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_does_not_change_results(workers):
    baseline = SweepExecutor(None).run_specs(_specs())
    fanned = SweepExecutor(workers).run_specs(_specs())
    assert fanned == baseline


def test_derive_seeds_deterministic_and_distinct():
    first = derive_seeds(123, 8)
    second = derive_seeds(123, 8)
    assert first == second
    assert len(set(first)) == 8
    # A prefix of a longer spawn is the same seeds: resumable grids.
    assert derive_seeds(123, 4) == first[:4]


@pytest.mark.parametrize("workers", [1, 2])
def test_figure7_panel_independent_of_workers(workers):
    config = PanelConfig(rho_prime=0.5, message_length=M)
    kwargs = dict(
        deadlines=[2.0 * M, 4.0 * M],
        include_simulation=True,
        sim_horizon=3_000.0,
        sim_warmup=400.0,
    )
    sequential = generate_panel(config, workers=None, **kwargs)
    fanned = generate_panel(config, workers=workers, **kwargs)
    for name, series in sequential.series.items():
        assert fanned.series[name].points == series.points


@pytest.mark.parametrize("workers", [1, 2])
def test_robustness_sweep_independent_of_workers(workers):
    config = RobustnessConfig(horizon=3_000.0, n_seeds=2)
    sequential = feedback_error_sweep(config, error_rates=(0.0, 0.01))
    fanned = feedback_error_sweep(
        config, error_rates=(0.0, 0.01), workers=workers
    )
    assert fanned.points == sequential.points


def test_replicate_parallel_matches_inline():
    inline = replicate(_loss_at_seed, n_replications=3, base_seed=5)
    fanned = replicate(
        _loss_at_seed, n_replications=3, base_seed=5, executor=2
    )
    assert fanned.values == inline.values


def _loss_at_seed(seed: int) -> float:
    spec = MACRunSpec(
        policy=ControlPolicy.optimal(3.0 * M, LAM),
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=3_000.0,
        warmup=400.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=seed,
    )
    return run_spec(spec).loss_fraction

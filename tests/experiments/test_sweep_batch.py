"""Batch-aware sweep scheduling: chunking, journals, quarantine.

The executor's contract from ISSUE 5: grouping seed replications into
lane-parallel batched tasks is a *scheduling* decision — results,
metrics, journal fingerprints, quarantine holes, and resume semantics
are identical to one-task-per-cell dispatch, for any chunk size and
worker count.
"""

import pytest

from repro.core import ControlPolicy
from repro.experiments import (
    MACRunSpec,
    ResilienceOptions,
    SweepExecutor,
    derive_seeds,
)
from repro.experiments import sweep as sweep_mod
from repro.obs.metrics import MetricsRegistry

M = 25
LAM = 0.5 / M


def _spec(seed, arm="optimal", **overrides):
    policy = (
        ControlPolicy.optimal(3.0 * M, LAM)
        if arm == "optimal"
        else ControlPolicy.uncontrolled_fcfs(LAM)
    )
    kwargs = dict(
        policy=policy,
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=3_000.0,
        warmup=500.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=seed,
    )
    kwargs.update(overrides)
    return MACRunSpec(**kwargs)


def _grid():
    # Two arms x four seeds plus one batch-ineligible cell (reference
    # loop), so every dispatch path appears in one sweep.
    specs = [_spec(s) for s in derive_seeds(1, 4)]
    specs += [_spec(s, arm="fcfs") for s in derive_seeds(9, 4)]
    specs.append(_spec(77, fast=False))
    return specs


class TestSchedulingInvariance:
    def test_results_invariant_to_batching_chunks_and_workers(self):
        specs = _grid()
        baseline = SweepExecutor(None, batch=False).run_specs(specs)
        assert SweepExecutor(None).run_specs(specs) == baseline
        assert (
            SweepExecutor(None, batch_chunk=3).run_specs(specs) == baseline
        )
        assert SweepExecutor(2).run_specs(specs) == baseline
        assert (
            SweepExecutor(2, batch_chunk=2).run_specs(specs) == baseline
        )

    def test_chunks_group_same_arm_replications(self):
        # Interleaved arms regroup into per-arm seed cohorts (first
        # appearance order) before slicing into chunks.
        specs = [
            _spec(1),
            _spec(1, arm="fcfs"),
            _spec(2),
            _spec(2, arm="fcfs"),
        ]
        executor = SweepExecutor(None)
        assert executor._chunks(list(range(4)), specs) == [[0, 2, 1, 3]]
        assert SweepExecutor(None, batch_chunk=2)._chunks(
            list(range(4)), specs
        ) == [[0, 2], [1, 3]]

    def test_metrics_merge_invariant_across_batching(self):
        specs = _grid()
        unbatched = MetricsRegistry()
        SweepExecutor(None, batch=False, metrics=unbatched).run_specs(specs)
        batched = MetricsRegistry()
        SweepExecutor(None, batch_chunk=3, metrics=batched).run_specs(specs)

        # Every scored metric is bit-identical; only volatile telemetry
        # (per-task wall clocks) may differ between scheduling modes.
        def scored(registry):
            return {
                name: metric
                for name, metric in registry.to_dict().items()
                if not metric.get("volatile")
            }

        assert scored(batched) == scored(unbatched)
        # Cells-executed accounting is member-weighted, so it too is
        # scheduling-invariant even though it is volatile telemetry.
        for registry in (batched, unbatched):
            assert registry.to_dict()["sweep.cells.executed"]["value"] == len(
                specs
            )


class TestQuarantine:
    def test_poisoned_batched_task_holes_every_member(self, monkeypatch):
        specs = [_spec(s) for s in derive_seeds(1, 6)]
        poison_seed = specs[4].seed
        real = sweep_mod.run_batch

        def poisoned(batch):
            if any(spec.seed == poison_seed for spec in batch):
                raise RuntimeError("injected batch poison")
            return real(batch)

        monkeypatch.setattr(sweep_mod, "run_batch", poisoned)
        executor = SweepExecutor(
            None,
            ResilienceOptions(max_retries=1, backoff_base=0.0),
            batch_chunk=3,
        )
        results = executor.run_specs(specs)

        # Chunks are [0..2] and [3..5]; the second is poisoned, and
        # every member holes visibly — never a silent truncation.
        assert [r is None for r in results] == [False] * 3 + [True] * 3
        outcome = executor.last_outcome
        assert outcome.holes() == [3, 4, 5]
        assert len(outcome.quarantined) == 3
        for record in outcome.quarantined:
            assert "injected batch poison" in record.reason
            assert "member of a 3-spec batched task" in record.reason
            assert record.attempts == 2
        # The healthy chunk's results are untouched by the neighbour.
        healthy = SweepExecutor(None, batch=False).run_specs(specs[:3])
        assert results[:3] == healthy


class TestJournalInterop:
    def test_batched_journal_resumes_unbatched_and_vice_versa(self, tmp_path):
        specs = _grid()
        baseline = SweepExecutor(None, batch=False).run_specs(specs)

        # Journal written by batched scheduling, resumed without it.
        j1 = str(tmp_path / "j-batched")
        SweepExecutor(
            None, ResilienceOptions(checkpoint=j1), batch_chunk=3
        ).run_specs(specs)
        resumer = SweepExecutor(
            None, ResilienceOptions(checkpoint=j1, resume=True), batch=False
        )
        assert resumer.run_specs(specs) == baseline
        assert resumer.last_outcome.replayed == len(specs)
        assert resumer.last_outcome.executed == 0

        # Journal written unbatched, resumed by batched scheduling.
        j2 = str(tmp_path / "j-plain")
        SweepExecutor(
            None, ResilienceOptions(checkpoint=j2), batch=False
        ).run_specs(specs)
        resumer = SweepExecutor(
            None, ResilienceOptions(checkpoint=j2, resume=True), batch_chunk=3
        )
        assert resumer.run_specs(specs) == baseline
        assert resumer.last_outcome.replayed == len(specs)
        assert resumer.last_outcome.executed == 0

    def test_killed_batched_sweep_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        # A sweep dies with one batched task poisoned (stand-in for a
        # crash mid-grid): completed members are journaled per spec, so
        # a fresh invocation replays them and re-runs only the hole —
        # and the final grid is bit-identical to an undisturbed run.
        specs = [_spec(s) for s in derive_seeds(1, 6)]
        baseline = SweepExecutor(None, batch=False).run_specs(specs)
        journal = str(tmp_path / "j-killed")
        poison_seed = specs[4].seed
        real = sweep_mod.run_batch

        def poisoned(batch):
            if any(spec.seed == poison_seed for spec in batch):
                raise RuntimeError("injected batch poison")
            return real(batch)

        monkeypatch.setattr(sweep_mod, "run_batch", poisoned)
        first = SweepExecutor(
            None,
            ResilienceOptions(
                max_retries=1, backoff_base=0.0, checkpoint=journal
            ),
            batch_chunk=3,
        )
        partial = first.run_specs(specs)
        assert partial[:3] == baseline[:3]
        assert partial[3:] == [None] * 3

        monkeypatch.setattr(sweep_mod, "run_batch", real)
        resumer = SweepExecutor(
            None,
            ResilienceOptions(checkpoint=journal, resume=True),
            batch_chunk=3,
        )
        resumed = resumer.run_specs(specs)
        assert resumed == baseline
        assert resumer.last_outcome.replayed == 3
        assert resumer.last_outcome.executed == 3

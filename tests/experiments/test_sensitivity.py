"""Tests for the robustness-sweep experiments (fast configurations)."""

import pytest

from repro.experiments import (
    burstiness_sensitivity,
    scheduling_model_sensitivity,
    station_count_sensitivity,
)


class TestSchedulingModelSensitivity:
    def test_rows_cover_requested_deadlines(self):
        rows = scheduling_model_sensitivity(deadlines=(25.0, 100.0))
        assert [row[0] for row in rows] == ["25", "100"]

    def test_geometric_close_to_exact(self):
        for row in scheduling_model_sensitivity():
            exact, geo = float(row[1]), float(row[2])
            assert geo == pytest.approx(exact, rel=0.05)

    def test_loss_decreases_with_deadline(self):
        rows = scheduling_model_sensitivity(deadlines=(25.0, 50.0, 100.0))
        exact = [float(row[1]) for row in rows]
        assert exact[0] > exact[1] > exact[2]


class TestStationCountSensitivity:
    def test_small_run(self):
        arms = station_count_sensitivity(
            station_counts=(8, 64), horizon=15_000.0, warmup=2_000.0
        )
        assert len(arms) == 2
        for arm in arms:
            assert 0.0 <= arm.loss <= 1.0
            assert arm.stderr is not None

    def test_tiny_population_aggregation_effect(self):
        """With very few stations, same-station aggregation (one message
        per station per window) delays siblings and raises loss."""
        arms = station_count_sensitivity(
            station_counts=(2, 256), horizon=60_000.0, warmup=8_000.0
        )
        assert arms[0].loss > arms[1].loss


class TestBurstinessSensitivity:
    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            burstiness_sensitivity(burst_ratios=(0.5,), horizon=5_000.0)

    def test_ratio_one_is_poisson(self):
        arms = burstiness_sensitivity(
            burst_ratios=(1.0,), horizon=20_000.0, warmup=2_000.0
        )
        assert arms[0].label == "peak/mean 1"
        assert 0.0 <= arms[0].loss <= 1.0

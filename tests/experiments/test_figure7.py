"""Tests for the Figure 7 panel generator (analytic arms).

Simulation arms are exercised by the benchmarks; here we verify the
panel machinery and the qualitative *shape* claims on the fast analytic
curves.
"""

import pytest

from repro.experiments import PAPER_PANELS, PanelConfig, default_deadlines, generate_panel
from repro.stats import monotone_fraction


class TestPanelConfig:
    def test_paper_grid(self):
        assert len(PAPER_PANELS) == 6
        rhos = {c.rho_prime for c in PAPER_PANELS}
        lengths = {c.message_length for c in PAPER_PANELS}
        assert rhos == {0.25, 0.50, 0.75}
        assert lengths == {25, 100}

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PanelConfig(0.0, 25)
        with pytest.raises(ValueError):
            PanelConfig(0.5, 0)
        with pytest.raises(ValueError):
            PanelConfig(0.5, 25, scheduling="magic")

    def test_arrival_rate(self):
        assert PanelConfig(0.5, 25).arrival_rate == pytest.approx(0.02)

    def test_default_deadlines_scale_with_m(self):
        small = default_deadlines(PanelConfig(0.5, 25))
        large = default_deadlines(PanelConfig(0.5, 100))
        assert max(large) == 4 * max(small)

    def test_service_pmf_exact_vs_geometric_same_mean(self):
        exact = PanelConfig(0.5, 25, scheduling="exact").service_pmf()
        geo = PanelConfig(0.5, 25, scheduling="geometric").service_pmf()
        assert exact.mean() == pytest.approx(geo.mean(), rel=1e-3)


@pytest.fixture(scope="module")
def mid_panel():
    """The ρ′ = 0.5, M = 25 analytic panel on a compact grid."""
    return generate_panel(
        PanelConfig(0.5, 25), deadlines=[12.5, 25, 50, 100, 200, 400]
    )


class TestPanelShape:
    def test_all_analytic_series_present(self, mid_panel):
        assert set(mid_panel.series) == {
            "controlled_analytic",
            "fcfs_analytic",
            "lcfs_analytic",
        }

    def test_losses_decrease_with_deadline(self, mid_panel):
        for series in mid_panel.series.values():
            assert monotone_fraction(series.losses(), decreasing=True) == 1.0

    def test_controlled_beats_fcfs_everywhere(self, mid_panel):
        controlled = mid_panel.series["controlled_analytic"].losses()
        fcfs = mid_panel.series["fcfs_analytic"].losses()
        assert all(c <= f + 1e-12 for c, f in zip(controlled, fcfs))

    def test_lcfs_fcfs_crossover(self, mid_panel):
        """LCFS beats FCFS at small K and loses at large K (its wait
        distribution has a lighter head but heavier tail)."""
        fcfs = mid_panel.series["fcfs_analytic"]
        lcfs = mid_panel.series["lcfs_analytic"]
        assert lcfs.loss_at(12.5) < fcfs.loss_at(12.5)
        assert lcfs.loss_at(400.0) > fcfs.loss_at(400.0)

    def test_losses_in_unit_interval(self, mid_panel):
        for series in mid_panel.series.values():
            assert all(0.0 <= loss <= 1.0 for loss in series.losses())


class TestLoadAndLengthEffects:
    def test_loss_increases_with_load(self):
        deadlines = [50.0]
        losses = {}
        for rho in (0.25, 0.50, 0.75):
            panel = generate_panel(PanelConfig(rho, 25), deadlines=deadlines)
            losses[rho] = panel.series["controlled_analytic"].loss_at(50.0)
        assert losses[0.25] < losses[0.50] < losses[0.75]

    def test_longer_messages_hurt_at_equal_k_over_m(self):
        """At the same K/M and ρ′, larger M means fewer scheduling
        opportunities per deadline — the paper's M = 100 panels sit above
        the M = 25 panels when K is scaled by M."""
        small = generate_panel(PanelConfig(0.5, 25), deadlines=[75.0])
        large = generate_panel(PanelConfig(0.5, 100), deadlines=[300.0])
        loss_small = small.series["controlled_analytic"].loss_at(75.0)
        loss_large = large.series["controlled_analytic"].loss_at(300.0)
        # scheduling overhead is a smaller fraction for M=100, so the
        # two are close; check they are within the same ballpark and
        # both panels generated successfully.
        assert loss_small == pytest.approx(loss_large, rel=0.5)

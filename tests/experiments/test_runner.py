"""Tests for the replication runner."""

import pytest

from repro.experiments import replicate


class TestReplicate:
    def test_needs_two_replications(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 1.0, n_replications=1)

    def test_deterministic_run_zero_width(self):
        result = replicate(lambda seed: 0.5, n_replications=4)
        assert result.mean == 0.5
        assert result.interval.half_width == pytest.approx(0.0)

    def test_seeds_are_distinct(self):
        seen = []
        replicate(lambda seed: seen.append(seed) or 0.0, n_replications=5)
        assert len(set(seen)) == 5

    def test_seed_dependent_values_recorded(self):
        result = replicate(lambda seed: float(seed % 7), n_replications=3)
        assert len(result.values) == 3
        assert result.interval.n == 3

"""Determinism and contracts of the sequential replication engine.

:func:`run_sequential` is a scheduling layer over the executor: lanes
run in batched waves until the group-sequential look says stop.  The
properties pinned here are exact — worker-count invariance, CRN seed
sharing, journaled stopping decisions, quarantine unit-poisoning —
because the stopping decision is a pure function of the journaled lane
results and must replay bit-identically.
"""

import math

import pytest

from repro.core import ControlPolicy
from repro.experiments import (
    MACRunSpec,
    ResilienceOptions,
    SequentialEstimate,
    SequentialOptions,
    SweepExecutor,
    run_sequential,
    sequential_decision_fingerprint,
)
from repro.obs import MetricsRegistry
from repro.resilience import RunJournal

M = 25
LAM = 0.5 / M


def _template(name="optimal", **overrides) -> MACRunSpec:
    if name == "optimal":
        policy = ControlPolicy.optimal(3.0 * M, LAM)
    else:
        policy = getattr(ControlPolicy, name)(LAM)
    kwargs = dict(
        policy=policy,
        arrival_rate=LAM,
        transmission_slots=M,
        horizon=2_500.0,
        warmup=300.0,
        n_stations=25,
        deadline=3.0 * M,
        seed=0,
    )
    kwargs.update(overrides)
    return MACRunSpec(**kwargs)


def _options(**overrides) -> SequentialOptions:
    kwargs = dict(
        ci_target=0.02,
        wave_size=2,
        min_replications=4,
        max_replications=12,
    )
    kwargs.update(overrides)
    return SequentialOptions(**kwargs)


def _arms():
    return [
        ("controlled", _template("optimal")),
        ("fcfs", _template("uncontrolled_fcfs")),
    ]


class TestDeterminism:
    def test_worker_count_invariant(self):
        inline = run_sequential(_arms(), _options(), SweepExecutor(None))
        fanned = run_sequential(_arms(), _options(), SweepExecutor(2))
        assert inline == fanned

    def test_batch_flag_invariant(self):
        batched = run_sequential(
            _arms(), _options(), SweepExecutor(None, batch=True)
        )
        unbatched = run_sequential(
            _arms(), _options(), SweepExecutor(None, batch=False)
        )
        assert batched == unbatched

    def test_rerun_is_bit_identical(self):
        a = run_sequential(_arms(), _options(), SweepExecutor(None))
        b = run_sequential(_arms(), _options(), SweepExecutor(None))
        assert a == b

    def test_arms_stop_independently(self):
        # A loose target lets the easy arm stop early; a tiny target
        # drives every arm to the seed budget.  Estimates stay in input
        # order regardless of stopping order.
        loose = run_sequential(
            _arms(), _options(ci_target=0.5), SweepExecutor(None)
        )
        assert [e.label for e in loose] == ["controlled", "fcfs"]
        assert all(e.reason == "ci-target" for e in loose)
        tight = run_sequential(
            _arms(), _options(ci_target=1e-9), SweepExecutor(None)
        )
        assert all(e.reason == "max-replications" for e in tight)
        assert all(e.units == 12 for e in tight)


class TestSeeding:
    def test_crn_shares_unit_seeds_across_arms(self):
        # Two arms with the *same* template under CRN see the same
        # sample paths: their per-unit observations are identical, so
        # the paired arm delta is exactly zero.
        arms = [("a", _template()), ("b", _template())]
        a, b = run_sequential(arms, _options(crn=True), SweepExecutor(None))
        assert a.mean == b.mean
        assert a.half_width == b.half_width

    def test_independent_seeding_differs(self):
        arms = [("a", _template()), ("b", _template())]
        a, b = run_sequential(arms, _options(crn=False), SweepExecutor(None))
        assert a.mean != b.mean

    def test_antithetic_pairs_double_the_lanes(self):
        plain, = run_sequential(
            [("arm", _template())], _options(), SweepExecutor(None)
        )
        paired, = run_sequential(
            [("arm", _template())],
            _options(antithetic=True),
            SweepExecutor(None),
        )
        assert plain.lanes == plain.units
        assert paired.lanes == 2 * paired.units

    def test_antithetic_is_reproducible(self):
        run = lambda: run_sequential(
            [("arm", _template())],
            _options(antithetic=True),
            SweepExecutor(None),
        )
        assert run() == run()


class TestJournalReplay:
    def test_resume_replays_identical_decisions(self, tmp_path):
        opts = _options()
        first = run_sequential(
            _arms(),
            opts,
            SweepExecutor(
                None, ResilienceOptions(checkpoint=str(tmp_path / "j"))
            ),
        )
        resumed = run_sequential(
            _arms(),
            opts,
            SweepExecutor(
                None,
                ResilienceOptions(
                    checkpoint=str(tmp_path / "j"),
                    resume=True,
                    verify_replay=True,
                ),
                batch=False,  # verify-replay audits recompute per cell
            ),
        )
        assert first == resumed
        assert all(e.decisions for e in resumed)

    def test_decisions_are_journaled_per_wave(self, tmp_path):
        opts = _options()
        estimates = run_sequential(
            _arms(),
            opts,
            SweepExecutor(
                None, ResilienceOptions(checkpoint=str(tmp_path / "j"))
            ),
        )
        journal = RunJournal(str(tmp_path / "j"))
        for (label, template), estimate in zip(_arms(), estimates):
            for decision in estimate.decisions:
                fp = sequential_decision_fingerprint(
                    template, opts, decision.wave
                )
                hit, recorded = journal.get(fp)
                assert hit, f"wave {decision.wave} of {label} not journaled"
                assert recorded == decision.to_dict()

    def test_fingerprint_is_config_sensitive(self):
        template = _template()
        assert sequential_decision_fingerprint(
            template, _options(), 1
        ) != sequential_decision_fingerprint(
            template, _options(ci_target=0.05), 1
        )
        assert sequential_decision_fingerprint(
            template, _options(), 1
        ) != sequential_decision_fingerprint(template, _options(), 2)

    def test_fingerprint_is_seed_sensitive(self):
        # A different --seed derives a different unit seed list, so its
        # decisions must land on different journal keys — colliding
        # would silently retain stale stopping records.
        template = _template()
        assert sequential_decision_fingerprint(
            template, _options(), 1, base_seed=1
        ) != sequential_decision_fingerprint(
            template, _options(), 1, base_seed=2
        )
        assert sequential_decision_fingerprint(
            template, _options(crn=True), 1
        ) != sequential_decision_fingerprint(
            template, _options(crn=False), 1
        )

    def test_resume_with_different_seed_re_decides_cleanly(self, tmp_path):
        """A journal written under one --seed must not collide with a
        resume under another: lanes and decisions both miss, the replay
        audit stays silent, and the run equals a fresh one at the new
        seed (the contract docs/statistics.md promises for config
        changes)."""
        opts = _options()
        run_sequential(
            _arms(),
            opts,
            SweepExecutor(
                None, ResilienceOptions(checkpoint=str(tmp_path / "j"))
            ),
            base_seed=1,
        )
        resumed = run_sequential(
            _arms(),
            opts,
            SweepExecutor(
                None,
                ResilienceOptions(
                    checkpoint=str(tmp_path / "j"),
                    resume=True,
                    verify_replay=True,
                ),
                batch=False,
            ),
            base_seed=2,
        )
        fresh = run_sequential(
            _arms(), opts, SweepExecutor(None), base_seed=2
        )
        assert resumed == fresh


class TestQuarantineAndEdges:
    def test_unresolved_lanes_poison_their_units(self):
        # A horizon short enough that nothing resolves: every unit is
        # quarantined, no observation lands, and the arm stops at the
        # seed budget instead of looping forever.
        dead = _template(
            arrival_rate=1e-9, horizon=50.0, warmup=0.0
        )
        estimate, = run_sequential(
            [("dead", dead)], _options(), SweepExecutor(None)
        )
        assert estimate.units == 0
        assert estimate.quarantined == 12
        assert estimate.lanes == 12
        assert math.isnan(estimate.mean)
        # The journaled cause must be the real one — the arm *stopped*,
        # it did not decide to continue.
        assert estimate.reason == "seed-budget-exhausted"
        assert estimate.decisions[-1].stop

    def test_empty_arm_list(self):
        assert run_sequential([], _options(), SweepExecutor(None)) == []

    def test_stderr_is_half_the_half_width(self):
        estimate = SequentialEstimate(
            label="x",
            mean=0.1,
            half_width=0.04,
            level=0.95,
            units=8,
            lanes=8,
            waves=2,
            reason="ci-target",
        )
        assert estimate.stderr() == pytest.approx(0.02)


class TestMetrics:
    def test_per_arm_stats_metrics_are_volatile(self):
        registry = MetricsRegistry(enabled=True)
        run_sequential(
            _arms(),
            _options(),
            SweepExecutor(None, metrics=registry),
        )
        names = registry.names()
        assert "stats.lanes_spent" in names
        assert "stats.arm.controlled.lanes_spent" in names
        assert "stats.arm.fcfs.stopping_wave" in names
        assert registry.value("stats.sequential_arms") == 2
        for name in names:
            if name.startswith("stats."):
                assert registry.get(name).volatile, f"{name} must be volatile"

"""Tests for the Theorem 1 verification experiment."""

import pytest

from repro.experiments import (
    Theorem1Config,
    enumerate_policy_family,
    run_theorem1_experiment,
)
from repro.smdp import build_protocol_smdp


@pytest.fixture(scope="module")
def report():
    config = Theorem1Config(
        arrival_rate=0.15, deadline=8, transmission=3, window_length=3, depth=6
    )
    return run_theorem1_experiment(config)


class TestExhaustiveSweep:
    def test_six_family_members(self, report):
        assert len(report.family) == 6

    def test_minimum_slack_wins(self, report):
        assert report.minimum_slack_is_best()

    def test_oldest_placement_dominates_split_choice(self, report):
        """Both oldest-placement variants beat every newest-placement one
        (element 1 matters more than element 3 at these parameters)."""
        by_key = {(r.placement, r.split): r.loss for r in report.family}
        worst_oldest = max(by_key["oldest", "older"], by_key["oldest", "newer"])
        best_newest = min(by_key["newest", "older"], by_key["newest", "newer"])
        assert worst_oldest < best_newest

    def test_older_split_beats_newer_at_fixed_placement(self, report):
        by_key = {(r.placement, r.split): r.loss for r in report.family}
        assert by_key["oldest", "older"] <= by_key["oldest", "newer"] + 1e-12


class TestPolicyIteration:
    def test_iteration_reaches_theorem_elements(self, report):
        assert report.iteration_uses_theorem_elements()

    def test_iteration_gain_at_most_family_best(self, report):
        """Policy iteration optimises over all lengths in the family too,
        so its loss cannot exceed the best fixed-family member."""
        assert report.optimal_gain_loss <= report.best_variant.loss + 1e-9


class TestRendering:
    def test_table_renders(self, report):
        table = report.to_table()
        assert "placement" in table
        assert "oldest" in table

    def test_family_sorted_by_loss(self, report):
        losses = [r.loss for r in report.family]
        assert losses == sorted(losses)


class TestFamilyEnumeration:
    def test_family_on_custom_model(self):
        config = Theorem1Config(
            arrival_rate=0.2, deadline=6, transmission=2, window_length=2, depth=5
        )
        model = build_protocol_smdp(
            config.arrival_rate,
            config.deadline,
            config.transmission,
            window_lengths=lambda i: [min(config.window_length, i)],
            positions="endpoints",
            depth=config.depth,
        )
        family = enumerate_policy_family(model, config)
        assert family[0].placement == "oldest"
        assert family[0].split == "older"


class TestSimulatedCrossCheck:
    def test_simulation_agrees_with_ranking(self):
        config = Theorem1Config(
            arrival_rate=0.15, deadline=8, transmission=3, window_length=3, depth=6
        )
        report = run_theorem1_experiment(config, simulate=True, sim_horizon=120_000.0)
        sim = {(r.placement, r.split): r.loss for r in report.simulated}
        assert sim["oldest", "older"] < sim["newest", "newer"]

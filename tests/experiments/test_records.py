"""Tests for experiment result records and rendering."""

import pytest

from repro.experiments import PanelResult, Series, ascii_table


class TestSeries:
    def test_add_and_access(self):
        s = Series("test")
        s.add(10.0, 0.5)
        s.add(20.0, 0.25, stderr=0.01)
        assert s.deadlines() == [10.0, 20.0]
        assert s.losses() == [0.5, 0.25]
        assert s.loss_at(20.0) == 0.25

    def test_loss_at_missing_raises(self):
        s = Series("test")
        s.add(10.0, 0.5)
        with pytest.raises(KeyError):
            s.loss_at(99.0)


class TestPanelResult:
    def build(self):
        panel = PanelResult(rho_prime=0.5, message_length=25)
        a = Series("analytic")
        a.add(10.0, 0.4)
        a.add(20.0, 0.2)
        b = Series("sim")
        b.add(10.0, 0.38, stderr=0.01)
        b.add(20.0, 0.21, stderr=0.01)
        panel.add_series(a)
        panel.add_series(b)
        return panel

    def test_title(self):
        assert self.build().title == "rho' = 0.50, M = 25"

    def test_duplicate_series_rejected(self):
        panel = self.build()
        with pytest.raises(ValueError):
            panel.add_series(Series("analytic"))

    def test_table_contains_all_cells(self):
        table = self.build().to_table()
        assert "analytic" in table
        assert "0.4000" in table
        assert "±" in table  # stderr rendered

    def test_csv_round_trip(self):
        csv = self.build().to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "deadline,analytic,sim"
        assert len(lines) == 3
        assert lines[1].startswith("10,")


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_title_prepended(self):
        table = ascii_table(["x"], [["1"]], title="My Table")
        assert table.startswith("My Table")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only one"]])


class TestMixedGrids:
    def test_sparse_series_renders_blank_cells(self):
        panel = PanelResult(rho_prime=0.75, message_length=25)
        dense = Series("dense")
        dense.add(10.0, 0.4)
        dense.add(20.0, 0.2)
        dense.add(40.0, 0.1)
        sparse = Series("sparse")
        sparse.add(20.0, 0.25, stderr=0.01)
        panel.add_series(dense)
        panel.add_series(sparse)
        table = panel.to_table()
        assert table.count("\n") == 5  # title + header + rule + 3 rows
        csv = panel.to_csv()
        lines = csv.strip().split("\n")
        assert lines[1] == "10,0.4,"
        assert lines[2] == "20,0.2,0.25"

    def test_union_grid_sorted(self):
        panel = PanelResult(rho_prime=0.5, message_length=25)
        a = Series("a")
        a.add(30.0, 0.1)
        b = Series("b")
        b.add(10.0, 0.5)
        panel.add_series(a)
        panel.add_series(b)
        assert panel._deadline_grid() == [10.0, 30.0]

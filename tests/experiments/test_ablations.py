"""Tests for the ablation experiments (fast configurations)."""

import pytest

from repro.experiments import (
    ablation_table,
    arity_ablation,
    element4_ablation,
    split_rule_ablation,
    twopoint_fit_errors,
    window_length_ablation,
)


class TestElement4:
    def test_discard_helps_under_pressure(self):
        arms = element4_ablation(
            rho_prime=0.75, message_length=25, deadline=50.0,
            horizon=60_000.0, warmup=8_000.0,
        )
        by_name = {arm.label: arm.loss for arm in arms}
        assert set(by_name) == {"controlled", "no_discard"}
        assert by_name["controlled"] < by_name["no_discard"]


class TestWindowLength:
    def test_analytic_heuristic_optimum_wins(self):
        arms = window_length_ablation(
            occupancies=(0.25, 1.0886, 4.0), simulate=False
        )
        losses = [arm.loss for arm in arms]
        assert losses[1] < losses[0]
        assert losses[1] < losses[2]

    def test_simulated_arm_runs(self):
        arms = window_length_ablation(
            occupancies=(1.0886,), simulate=True, horizon=20_000.0, warmup=2_000.0
        )
        assert arms[0].stderr is not None


class TestSplitRule:
    def test_all_rules_run(self):
        arms = split_rule_ablation(horizon=30_000.0, warmup=4_000.0)
        assert {arm.label for arm in arms} == {"older", "newer", "random"}
        for arm in arms:
            assert 0.0 <= arm.loss <= 1.0


class TestArity:
    def test_arities_run(self):
        arms = arity_ablation(arities=(2, 3), horizon=30_000.0, warmup=4_000.0)
        assert len(arms) == 2


class TestTwoPointFit:
    def test_table_renders(self):
        table = twopoint_fit_errors()
        assert "rel. error" in table
        assert "linear" in table and "exponential" in table


class TestTableRendering:
    def test_ablation_table(self):
        arms = window_length_ablation(occupancies=(1.0,), simulate=False)
        table = ablation_table(arms, "demo")
        assert table.startswith("demo")

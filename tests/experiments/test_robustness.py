"""Tests for the robustness experiment harness."""

import pytest

from repro.experiments import (
    DEFAULT_ERROR_RATES,
    RobustnessConfig,
    feedback_error_sweep,
    station_failure_scenario,
)

FAST = RobustnessConfig(horizon=8_000.0, n_seeds=1, n_stations=25)


class TestConfig:
    def test_derived_quantities(self):
        config = RobustnessConfig(rho_prime=0.5, message_length=25,
                                  deadline_factor=3.0)
        assert config.arrival_rate == pytest.approx(0.02)
        assert config.deadline == pytest.approx(75.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RobustnessConfig(rho_prime=0.0)
        with pytest.raises(ValueError):
            RobustnessConfig(n_seeds=0)
        with pytest.raises(ValueError):
            RobustnessConfig(message_length=0)

    def test_default_error_grid_starts_fault_free(self):
        assert DEFAULT_ERROR_RATES[0] == 0.0
        assert list(DEFAULT_ERROR_RATES) == sorted(DEFAULT_ERROR_RATES)


class TestFeedbackSweep:
    def test_sweep_structure(self):
        report = feedback_error_sweep(FAST, error_rates=(0.0, 0.02))
        assert [p.error_rate for p in report.points] == [0.0, 0.02]
        assert len(report.losses()) == 2
        assert all(0.0 <= loss <= 1.0 for loss in report.losses())
        # The fault-free arm exercises the replica path but must inject
        # nothing.
        assert report.points[0].resyncs == 0
        assert report.points[0].cohort_splits == 0
        assert report.points[1].cohort_splits > 0

    def test_table_renders(self):
        report = feedback_error_sweep(FAST, error_rates=(0.0,))
        table = report.to_table()
        assert "Graceful degradation" in table
        assert "error rate" in table


class TestFailureScenario:
    def test_soak_completes_with_telemetry(self):
        results = station_failure_scenario(FAST)
        assert len(results) == FAST.n_seeds
        for result in results:
            t = result.faults
            assert t.crashes > 0
            assert t.resyncs >= t.restarts
            assert 0.0 <= result.loss_fraction <= 1.0

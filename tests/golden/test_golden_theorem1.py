"""Golden regression: Theorem-1 family losses and the optimal gain.

``theorem1_smallK.json`` pins the analytic pseudo-loss of every
(placement, split) member of the {Pʷ} family at the small-K default
configuration, plus the gain of the policy-iteration fixed point.  The
values come from exact linear solves, so the tolerance is tight; the
*ordering* of the family (minimum slack wins — Theorem 1's claim) is
asserted structurally on top of the numbers.
"""

import pytest

from repro.experiments.theorem1 import run_theorem1_experiment

from .checks import assert_matches_golden, load_golden

REL_TOL = 1e-9
ABS_TOL = 1e-12

GOLDEN = load_golden("theorem1_smallK.json")


@pytest.fixture(scope="module")
def report():
    return run_theorem1_experiment()


def test_family_losses_match_golden(report):
    pinned = GOLDEN["family"]
    assert [(v.placement, v.split) for v in report.family] == [
        (entry["placement"], entry["split"]) for entry in pinned
    ]
    assert_matches_golden(
        [v.loss for v in report.family],
        [entry["loss"] for entry in pinned],
        rel_tol=REL_TOL,
        abs_tol=ABS_TOL,
        label="family.loss",
    )


def test_optimal_gain_matches_golden(report):
    assert_matches_golden(
        [report.optimal_gain_loss],
        [GOLDEN["optimal_gain_loss"]],
        rel_tol=REL_TOL,
        abs_tol=ABS_TOL,
        label="optimal_gain_loss",
    )


def test_theorem1_structure_still_holds(report):
    assert report.minimum_slack_is_best()
    assert report.iteration_uses_theorem_elements()
    # the iterated optimum is at least as good as every family member
    assert report.optimal_gain_loss <= report.family[0].loss + ABS_TOL


def test_comparison_rejects_perturbed_gain():
    pinned = GOLDEN["optimal_gain_loss"]
    with pytest.raises(AssertionError, match="optimal_gain_loss"):
        assert_matches_golden(
            [pinned * (1 + 1e-6)],
            [pinned],
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
            label="optimal_gain_loss",
        )

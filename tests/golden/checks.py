"""Golden-value comparison helper with explicit tolerances.

The goldens are the repo's own deterministic outputs, pinned so a
numerical regression (a changed recursion, a reordered reduction, a
"harmless" refactor of eq. 4.7) fails loudly with the offending index
and magnitude.  Tolerances are *explicit at every call site* — a golden
test with an implicit tolerance is just a slower ``==``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Sequence

GOLDEN_DIR = Path(__file__).resolve().parent


def load_golden(name: str) -> dict:
    """Read one pinned-value file from ``tests/golden/``."""
    with open(GOLDEN_DIR / name, "r", encoding="utf-8") as handle:
        return json.load(handle)


def assert_matches_golden(
    actual: Sequence[float],
    golden: Sequence[float],
    *,
    rel_tol: float,
    abs_tol: float,
    label: str,
) -> None:
    """Element-wise comparison against pinned values.

    Fails with the first offending index, both values, and the observed
    error so a regression report reads without rerunning locally.
    """
    assert len(actual) == len(golden), (
        f"{label}: length {len(actual)} != golden length {len(golden)}"
    )
    for index, (a, g) in enumerate(zip(actual, golden)):
        if not math.isclose(a, g, rel_tol=rel_tol, abs_tol=abs_tol):
            raise AssertionError(
                f"{label}[{index}]: {a!r} != golden {g!r} "
                f"(abs err {abs(a - g):.3e}, "
                f"rel_tol={rel_tol:g}, abs_tol={abs_tol:g})"
            )

"""Golden regression: one validity scenario per family at (ρ′=0.5, M=25, K=75).

``validity_families.json`` pins, for every scenario family, the eq. 4.7
analytic prediction, the simulated fraction-late and their divergence on
a fixed 40k-slot seed-7 run.  The whole pipeline is deterministic —
closed-form analysis plus a seeded simulation — so the tolerance is
tight (1e-9 relative): any drift means either the analysis or a kernel
changed numerically, or a workload generator's draw sequence moved, and
should be reviewed before re-pinning.

On top of the raw pins, the ISSUE 9 acceptance property is asserted
against them: the stationary control sits inside the agreement
tolerance while every nonstationary family exceeds it.
"""

import pytest

from repro.experiments import ValidityConfig, run_validity

from .checks import assert_matches_golden, load_golden

REL_TOL = 1e-9
ABS_TOL = 1e-12

GOLDEN = load_golden("validity_families.json")
FAMILIES = tuple(GOLDEN["families"])


@pytest.fixture(scope="module")
def report():
    pinned = GOLDEN["config"]
    return run_validity(
        ValidityConfig(
            rho_primes=(pinned["rho_prime"],),
            message_lengths=(pinned["message_length"],),
            deadline_factors=(pinned["deadline"] / pinned["message_length"],),
            families=FAMILIES,
            horizon=pinned["horizon"],
            warmup=pinned["warmup"],
            seed=pinned["seed"],
            n_stations=pinned["n_stations"],
            agreement_tol=GOLDEN["agreement_tol"],
        )
    )


@pytest.mark.parametrize("family", FAMILIES)
def test_family_divergence_matches_golden(report, family):
    pinned = GOLDEN["families"][family]
    cell = report.cell(
        family,
        GOLDEN["config"]["rho_prime"],
        GOLDEN["config"]["message_length"],
        GOLDEN["config"]["deadline"],
    )
    assert_matches_golden(
        [cell.analytic, cell.simulated, cell.delta],
        [pinned["analytic"], pinned["simulated"], pinned["delta"]],
        rel_tol=REL_TOL,
        abs_tol=ABS_TOL,
        label=f"validity.{family}",
    )


def test_stationary_control_agrees_and_nonstationary_families_break(report):
    # The acceptance property, asserted on the pinned scenario: the
    # analysis's own assumption validates the harness, everything else
    # demonstrates the blind spot.
    tol = GOLDEN["agreement_tol"]
    cells = {cell.family: cell for cell in report.cells}
    assert cells["stationary"].agrees(tol)
    for family in FAMILIES:
        if family == "stationary":
            continue
        assert not cells[family].agrees(tol), family
        assert cells[family].delta > 0, family  # eq. 4.7 is optimistic


def test_comparison_rejects_perturbed_values():
    """The golden check must fail on a deliberate perturbation."""
    pinned = GOLDEN["families"]["adversarial"]
    values = [pinned["analytic"], pinned["simulated"], pinned["delta"]]
    perturbed = list(values)
    perturbed[1] *= 1 + 1e-6  # far beyond the 1e-9 relative tolerance
    with pytest.raises(AssertionError, match="validity.adversarial\\[1\\]"):
        assert_matches_golden(
            perturbed,
            values,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
            label="validity.adversarial",
        )


def test_comparison_rejects_missing_family():
    """Length drift (a family silently dropped) must fail, not pass."""
    with pytest.raises(AssertionError, match="length"):
        assert_matches_golden(
            [0.0, 0.0],
            [0.0, 0.0, 0.0],
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
            label="validity.families",
        )

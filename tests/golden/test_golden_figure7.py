"""Golden regression: Figure-7 analytic fractions-late at (ρ′=0.5, M=25).

The pinned values in ``figure7_rho05_m25.json`` are this repo's own
deterministic outputs of eq. 4.7 (§4.1 iteration) and the two
uncontrolled M/G/1 tails over the default deadline grid.  Tolerance is
tight (1e-9 relative) because the computation is closed-form: anything
beyond accumulated float noise is a real numerical change and should be
reviewed, then re-pinned deliberately.
"""

import pytest

from repro.experiments import PanelConfig, generate_panel

from .checks import assert_matches_golden, load_golden

REL_TOL = 1e-9
ABS_TOL = 1e-12

GOLDEN = load_golden("figure7_rho05_m25.json")


@pytest.fixture(scope="module")
def panel():
    return generate_panel(PanelConfig(rho_prime=0.5, message_length=25))


@pytest.mark.parametrize(
    "series_name", ["controlled_analytic", "fcfs_analytic", "lcfs_analytic"]
)
def test_fractions_late_match_golden(panel, series_name):
    pinned = GOLDEN["series"][series_name]
    series = panel.series[series_name]
    assert series.deadlines() == pinned["deadlines"]
    assert_matches_golden(
        [p.loss for p in series.points],
        pinned["fraction_late"],
        rel_tol=REL_TOL,
        abs_tol=ABS_TOL,
        label=series_name,
    )


def test_controlled_curve_is_monotone_in_deadline(panel):
    losses = [p.loss for p in panel.series["controlled_analytic"].points]
    assert losses == sorted(losses, reverse=True)
    assert all(0.0 <= loss <= 1.0 for loss in losses)


def test_comparison_rejects_perturbed_values():
    """The golden check must fail on a deliberate perturbation."""
    pinned = GOLDEN["series"]["controlled_analytic"]["fraction_late"]
    perturbed = list(pinned)
    perturbed[0] *= 1 + 1e-6  # far beyond the 1e-9 relative tolerance
    with pytest.raises(AssertionError, match="controlled_analytic\\[0\\]"):
        assert_matches_golden(
            perturbed,
            pinned,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
            label="controlled_analytic",
        )


def test_comparison_rejects_length_drift():
    pinned = GOLDEN["series"]["fcfs_analytic"]["fraction_late"]
    with pytest.raises(AssertionError, match="length"):
        assert_matches_golden(
            pinned[:-1],
            pinned,
            rel_tol=REL_TOL,
            abs_tol=ABS_TOL,
            label="fcfs_analytic",
        )
